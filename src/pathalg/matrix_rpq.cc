#include "pathalg/matrix_rpq.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/obs.h"

namespace kgq {

// ---------------------------------------------------------------------
// BoolCsr

BoolCsr BoolCsr::FromEntries(size_t rows, size_t cols,
                             std::vector<std::pair<uint32_t, uint32_t>> es) {
  std::sort(es.begin(), es.end());
  es.erase(std::unique(es.begin(), es.end()), es.end());
  BoolCsr out;
  out.num_rows = rows;
  out.num_cols = cols;
  out.offsets.assign(rows + 1, 0);
  out.cols.reserve(es.size());
  for (const auto& [r, c] : es) ++out.offsets[r + 1];
  for (size_t i = 1; i <= rows; ++i) out.offsets[i] += out.offsets[i - 1];
  for (const auto& [r, c] : es) out.cols.push_back(c);
  return out;
}

BoolCsr BoolCsr::Identity(size_t n) {
  BoolCsr out;
  out.num_rows = n;
  out.num_cols = n;
  out.offsets.resize(n + 1);
  out.cols.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.offsets[i] = i;
    out.cols[i] = static_cast<uint32_t>(i);
  }
  out.offsets[n] = n;
  return out;
}

BoolCsr BoolCsr::FromSnapshotLabel(const CsrSnapshot& snap, LabelId label,
                                   bool transpose) {
  std::vector<std::pair<uint32_t, uint32_t>> es;
  es.reserve(snap.CountForLabel(label));
  for (NodeId n = 0; n < snap.num_nodes(); ++n) {
    CsrSnapshot::Span part =
        transpose ? snap.InForLabel(n, label) : snap.OutForLabel(n, label);
    for (const CsrSnapshot::Entry& e : part) {
      es.emplace_back(static_cast<uint32_t>(n), e.neighbor);
    }
  }
  return FromEntries(snap.num_nodes(), snap.num_nodes(), std::move(es));
}

BoolCsr BoolCsrForLabel(const CsrSnapshot& snap, std::string_view label,
                        bool transpose) {
  std::optional<LabelId> id = snap.FindLabel(label);
  if (!id.has_value()) {
    return BoolCsr::FromEntries(snap.num_nodes(), snap.num_nodes(), {});
  }
  return BoolCsr::FromSnapshotLabel(snap, *id, transpose);
}

bool BoolCsr::Test(size_t r, size_t c) const {
  const uint32_t* lo = cols.data() + offsets[r];
  const uint32_t* hi = cols.data() + offsets[r + 1];
  return std::binary_search(lo, hi, static_cast<uint32_t>(c));
}

BoolCsr BoolSpGemm(const BoolCsr& a, const BoolCsr& b,
                   const BoolCsr* complement_mask,
                   const ParallelOptions& par) {
  BoolCsr out;
  out.num_rows = a.num_rows;
  out.num_cols = b.num_cols;
  out.offsets.assign(a.num_rows + 1, 0);

  // Gustavson, parallel over output rows: row i of C is the union of
  // the B-rows selected by row i of A, accumulated in a bitmap and
  // extracted in ascending column order — the output is canonical CSR
  // for every schedule. Rows are stitched after a prefix sum.
  std::vector<std::vector<uint32_t>> row_cols(a.num_rows);
  size_t grain = std::max<size_t>(1, (a.num_rows + 255) / 256);
  ParallelFor(
      0, a.num_rows, grain,
      [&](size_t lo, size_t hi) {
        Bitset acc(b.num_cols);
        [[maybe_unused]] size_t entries = 0, word_ops = 0;
        for (size_t i = lo; i < hi; ++i) {
          acc.ClearAll();
          for (size_t k = a.offsets[i]; k < a.offsets[i + 1]; ++k) {
            uint32_t mid = a.cols[k];
            for (size_t j = b.offsets[mid]; j < b.offsets[mid + 1]; ++j) {
              acc.Set(b.cols[j]);
              ++word_ops;
            }
            entries += b.offsets[mid + 1] - b.offsets[mid];
          }
          std::vector<uint32_t>& row = row_cols[i];
          acc.ForEach([&](size_t c) {
            if (complement_mask != nullptr && complement_mask->Test(i, c)) {
              return;
            }
            row.push_back(static_cast<uint32_t>(c));
          });
        }
        if (KGQ_OBS_ON()) {
          KGQ_COUNTER_ADD("matrix_rpq.spgemm.entries", entries);
          KGQ_COUNTER_ADD("matrix_rpq.spgemm.word_ops", word_ops);
        }
      },
      par);

  for (size_t i = 0; i < a.num_rows; ++i) {
    out.offsets[i + 1] = out.offsets[i] + row_cols[i].size();
  }
  out.cols.resize(out.offsets[a.num_rows]);
  for (size_t i = 0; i < a.num_rows; ++i) {
    std::copy(row_cols[i].begin(), row_cols[i].end(),
              out.cols.begin() + out.offsets[i]);
  }
  return out;
}

BoolCsr BoolSpGemmDelta(const BoolCsr& frontier, const BoolCsr& adj,
                        const BoolCsr& visited, const ParallelOptions& par) {
  BoolCsr out;
  out.num_rows = frontier.num_rows;
  out.num_cols = adj.num_cols;
  out.offsets.assign(frontier.num_rows + 1, 0);

  // Bit-identical to BoolSpGemm(frontier, adj, &visited) — same
  // Gustavson accumulation, same mask — but the accumulator is only
  // cleared for *nonempty* frontier rows, so a sparse frontier costs
  // its own nnz, not one bitmap wipe per matrix row.
  std::vector<std::vector<uint32_t>> row_cols(frontier.num_rows);
  size_t grain = std::max<size_t>(1, (frontier.num_rows + 255) / 256);
  ParallelFor(
      0, frontier.num_rows, grain,
      [&](size_t lo, size_t hi) {
        Bitset acc(adj.num_cols);
        [[maybe_unused]] size_t entries = 0, word_ops = 0, delta_rows = 0;
        for (size_t i = lo; i < hi; ++i) {
          if (frontier.offsets[i] == frontier.offsets[i + 1]) continue;
          ++delta_rows;
          acc.ClearAll();
          for (size_t k = frontier.offsets[i]; k < frontier.offsets[i + 1];
               ++k) {
            uint32_t mid = frontier.cols[k];
            for (size_t j = adj.offsets[mid]; j < adj.offsets[mid + 1]; ++j) {
              acc.Set(adj.cols[j]);
              ++word_ops;
            }
            entries += adj.offsets[mid + 1] - adj.offsets[mid];
          }
          std::vector<uint32_t>& row = row_cols[i];
          acc.ForEach([&](size_t c) {
            if (visited.Test(i, c)) return;
            row.push_back(static_cast<uint32_t>(c));
          });
        }
        if (KGQ_OBS_ON()) {
          KGQ_COUNTER_ADD("matrix_rpq.spgemm.entries", entries);
          KGQ_COUNTER_ADD("matrix_rpq.spgemm.word_ops", word_ops);
          KGQ_COUNTER_ADD("matrix_rpq.spgemm.delta_rows", delta_rows);
        }
      },
      par);

  for (size_t i = 0; i < frontier.num_rows; ++i) {
    out.offsets[i + 1] = out.offsets[i] + row_cols[i].size();
  }
  out.cols.resize(out.offsets[frontier.num_rows]);
  for (size_t i = 0; i < frontier.num_rows; ++i) {
    std::copy(row_cols[i].begin(), row_cols[i].end(),
              out.cols.begin() + out.offsets[i]);
  }
  return out;
}

BoolCsr BoolUnion(const BoolCsr& a, const BoolCsr& b) {
  BoolCsr out;
  out.num_rows = a.num_rows;
  out.num_cols = a.num_cols;
  out.offsets.assign(a.num_rows + 1, 0);
  out.cols.reserve(a.nnz() + b.nnz());
  for (size_t i = 0; i < a.num_rows; ++i) {
    size_t ai = a.offsets[i], ae = a.offsets[i + 1];
    size_t bi = b.offsets[i], be = b.offsets[i + 1];
    while (ai < ae || bi < be) {
      uint32_t c;
      if (bi >= be || (ai < ae && a.cols[ai] <= b.cols[bi])) {
        c = a.cols[ai++];
        if (bi < be && b.cols[bi] == c) ++bi;
      } else {
        c = b.cols[bi++];
      }
      out.cols.push_back(c);
    }
    out.offsets[i + 1] = out.cols.size();
  }
  return out;
}

Bitset BoolSpMv(const BoolCsr& a, const Bitset& x,
                const Bitset* complement_mask) {
  Bitset y(a.num_rows);
  [[maybe_unused]] size_t entries = 0;
  for (size_t i = 0; i < a.num_rows; ++i) {
    entries += a.offsets[i + 1] - a.offsets[i];
    for (size_t k = a.offsets[i]; k < a.offsets[i + 1]; ++k) {
      if (x.Test(a.cols[k])) {
        if (complement_mask == nullptr || !complement_mask->Test(i)) {
          y.Set(i);
        }
        break;
      }
    }
  }
  KGQ_COUNTER_ADD("matrix_rpq.spgemm.entries", entries);
  return y;
}

// ---------------------------------------------------------------------
// BitMatrix

bool BitMatrix::RowAny(size_t r) const {
  const uint64_t* row = Row(r);
  for (size_t w = 0; w < words_per_row_; ++w) {
    if (row[w] != 0) return true;
  }
  return false;
}

void BitMatrix::ZeroRow(size_t r) {
  std::memset(Row(r), 0, words_per_row_ * sizeof(uint64_t));
}

void BitMatrix::ZeroAll() {
  std::fill(words_.begin(), words_.end(), 0);
}

// ---------------------------------------------------------------------
// Product-graph fixpoint

namespace {

/// Reverse transition: state `from` reaches the owning state across
/// atoms of class `cls` (label partition `label` when kLabel).
struct InTrans {
  uint32_t from;
  uint32_t atom;
  bool backward;
  PathNfa::AtomClass cls;
  LabelId label;
};

/// dst |= src over one row; returns the word count (the boolean flops).
inline size_t OrWords(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] |= src[w];
  return words;
}

}  // namespace

Result<std::vector<Bitset>> MatrixReachFromAll(const PathNfa& nfa,
                                               const std::vector<NodeId>& sources,
                                               const PathQueryOptions& opts) {
  const CsrSnapshot* csr = nfa.snapshot();
  if (csr == nullptr) {
    return Status::InvalidArgument(
        "the matrix RPQ engine requires an attached CsrSnapshot");
  }
  KGQ_SPAN("matrix_rpq.eval");
  const size_t num_nodes = nfa.num_nodes();
  const size_t num_q = nfa.num_states();
  const size_t num_src = sources.size();
  const size_t words = (num_src + 63) / 64;

  // Per automaton state: everything reached (visited), the bits new in
  // the previous generation (frontier), and the product accumulator of
  // the current generation (next). Rows are nodes, columns sources.
  std::vector<BitMatrix> visited(num_q), frontier(num_q), next(num_q);
  for (size_t q = 0; q < num_q; ++q) {
    visited[q] = BitMatrix(num_nodes, num_src);
    frontier[q] = BitMatrix(num_nodes, num_src);
    next[q] = BitMatrix(num_nodes, num_src);
  }
  // active[q][n] = 1 iff frontier[q] row n is nonzero — the sparsity
  // the gather consults before touching a row's words. Bytes, not bits:
  // parallel writers own disjoint rows but could share a bitset word.
  std::vector<std::vector<uint8_t>> active(
      num_q, std::vector<uint8_t>(num_nodes, 0));

  bool any = false;
  for (size_t si = 0; si < num_src; ++si) {
    NodeId s = sources[si];
    if (s >= num_nodes) continue;
    // The per-source restrictions ReachableFrom applies before its BFS.
    if (opts.avoid != kNoNode && s == opts.avoid) continue;
    if (opts.start != kNoNode && s != opts.start) continue;
    PathNfa::StateMask m = nfa.StartMask(s);  // ε-closed, never 0.
    while (m != 0) {
      uint32_t q = static_cast<uint32_t>(__builtin_ctzll(m));
      m &= m - 1;
      visited[q].Set(s, si);
      frontier[q].Set(s, si);
      active[q][s] = 1;
      any = true;
    }
  }

  // Reverse transition lists: everything flowing *into* state q', with
  // atoms pre-classified against the snapshot. The gather below runs
  // over destination rows, so a forward atom reads the in-view (edges
  // arriving at the row's node) and a backward atom the out-view —
  // self-loops appear in both views, which is exactly the "a self-loop
  // fires both directions" step semantics of ForEachSuccessor.
  std::vector<std::vector<InTrans>> into(num_q);
  for (const PathNfa::TransitionView& t : nfa.Transitions()) {
    PathNfa::AtomClass cls = nfa.ClassifyAtom(t.atom);
    if (cls == PathNfa::AtomClass::kDead) continue;
    LabelId lab = cls == PathNfa::AtomClass::kLabel
                      ? nfa.AtomSnapshotLabel(t.atom)
                      : kNoLabel;
    into[t.to].push_back({t.from, t.atom, t.backward, cls, lab});
  }

  // Per-signature ε-closure pairs (q1 → q2, q2 ≠ q1): at any node with
  // that signature, bits arriving in q1 also belong to q2. Rows are
  // transitively closed, so one in-place pass per generation saturates.
  const size_t num_sigs = nfa.NumClosureSignatures();
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> sig_pairs(num_sigs);
  for (uint32_t sig = 0; sig < num_sigs; ++sig) {
    for (uint32_t q1 = 0; q1 < num_q; ++q1) {
      PathNfa::StateMask m = nfa.SignatureClosure(sig, q1) & ~(1ull << q1);
      while (m != 0) {
        uint32_t q2 = static_cast<uint32_t>(__builtin_ctzll(m));
        m &= m - 1;
        sig_pairs[sig].emplace_back(q1, q2);
      }
    }
  }

  size_t grain = std::max<size_t>(16, (num_nodes + 255) / 256);
  size_t iterations = 0;
  while (any) {
    ++iterations;
    for (size_t q = 0; q < num_q; ++q) next[q].ZeroAll();

    // Product sweep: next[q'] |= A_atomᵀ · frontier[q] per transition,
    // gathered per destination row (each row owned by one chunk).
    ParallelFor(
        0, num_nodes, grain,
        [&](size_t lo, size_t hi) {
          [[maybe_unused]] size_t entries = 0, word_ops = 0;
          for (NodeId n = lo; n < hi; ++n) {
            if (opts.avoid != kNoNode && n == opts.avoid) continue;
            for (size_t qd = 0; qd < num_q; ++qd) {
              uint64_t* dst = next[qd].Row(n);
              for (const InTrans& t : into[qd]) {
                const std::vector<uint8_t>& act = active[t.from];
                const BitMatrix& src = frontier[t.from];
                if (t.cls == PathNfa::AtomClass::kLabel) {
                  CsrSnapshot::Span part = t.backward
                                               ? csr->OutForLabel(n, t.label)
                                               : csr->InForLabel(n, t.label);
                  entries += part.size();
                  for (const CsrSnapshot::Entry& e : part) {
                    if (!act[e.neighbor]) continue;
                    word_ops += OrWords(dst, src.Row(e.neighbor), words);
                  }
                } else {
                  CsrSnapshot::Span adj =
                      t.backward ? csr->Out(n) : csr->In(n);
                  entries += adj.size();
                  for (const CsrSnapshot::Entry& e : adj) {
                    if (!act[e.neighbor]) continue;
                    if (!nfa.AtomMatchesEdge(t.atom, e.edge)) continue;
                    word_ops += OrWords(dst, src.Row(e.neighbor), words);
                  }
                }
              }
            }
          }
          if (KGQ_OBS_ON()) {
            KGQ_COUNTER_ADD("matrix_rpq.spgemm.entries", entries);
            KGQ_COUNTER_ADD("matrix_rpq.spgemm.word_ops", word_ops);
          }
        },
        opts.parallel);

    // ε-closure + complement masking against visited, per row: the new
    // frontier is close(next) ∧ ¬visited; visited absorbs it. Each row
    // is owned by one chunk; `fresh` is exact, so `changed` converges
    // to the same value for every schedule.
    std::vector<uint8_t> chunk_changed(num_nodes, 0);
    ParallelFor(
        0, num_nodes, grain,
        [&](size_t lo, size_t hi) {
          [[maybe_unused]] size_t word_ops = 0;
          for (NodeId n = lo; n < hi; ++n) {
            for (const auto& [q1, q2] : sig_pairs[nfa.ClosureSignatureOf(n)]) {
              word_ops += OrWords(next[q2].Row(n), next[q1].Row(n), words);
            }
            for (size_t q = 0; q < num_q; ++q) {
              uint64_t* fr = frontier[q].Row(n);
              uint64_t* vis = visited[q].Row(n);
              const uint64_t* nx = next[q].Row(n);
              uint64_t row_any = 0;
              for (size_t w = 0; w < words; ++w) {
                uint64_t fresh = nx[w] & ~vis[w];
                fr[w] = fresh;
                vis[w] |= fresh;
                row_any |= fresh;
              }
              word_ops += 2 * words;
              active[q][n] = row_any != 0 ? 1 : 0;
              if (row_any != 0) chunk_changed[n] = 1;
            }
          }
          if (KGQ_OBS_ON()) {
            KGQ_COUNTER_ADD("matrix_rpq.spgemm.word_ops", word_ops);
          }
        },
        opts.parallel);
    any = std::find(chunk_changed.begin(), chunk_changed.end(), 1) !=
          chunk_changed.end();
  }
  KGQ_HISTOGRAM_RECORD("matrix_rpq.fixpoint_iterations", iterations);

  // Harvest: source si reaches node n iff some accepting state holds
  // bit si in row n.
  std::vector<Bitset> out(num_src);
  for (size_t si = 0; si < num_src; ++si) out[si] = Bitset(num_nodes);
  PathNfa::StateMask final_mask = nfa.final_mask();
  for (NodeId n = 0; n < num_nodes; ++n) {
    PathNfa::StateMask fm = final_mask;
    while (fm != 0) {
      uint32_t q = static_cast<uint32_t>(__builtin_ctzll(fm));
      fm &= fm - 1;
      const uint64_t* row = visited[q].Row(n);
      for (size_t w = 0; w < words; ++w) {
        uint64_t word = row[w];
        while (word != 0) {
          size_t si = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
          word &= word - 1;
          if (si < num_src) out[si].Set(n);
        }
      }
    }
  }
  if (opts.end != kNoNode) {
    for (size_t si = 0; si < num_src; ++si) {
      Bitset only_end(num_nodes);
      if (opts.end < num_nodes && out[si].Test(opts.end)) {
        only_end.Set(opts.end);
      }
      out[si] = std::move(only_end);
    }
  }
  return out;
}

Result<Bitset> MatrixReachableFrom(const PathNfa& nfa, NodeId start,
                                   const PathQueryOptions& opts) {
  KGQ_ASSIGN_OR_RETURN(std::vector<Bitset> rows,
                       MatrixReachFromAll(nfa, {start}, opts));
  return std::move(rows[0]);
}

Result<std::vector<Bitset>> MatrixAllPairs(const PathNfa& nfa,
                                           const PathQueryOptions& opts) {
  std::vector<NodeId> sources(nfa.num_nodes());
  for (NodeId n = 0; n < sources.size(); ++n) sources[n] = n;
  return MatrixReachFromAll(nfa, sources, opts);
}

void MatrixReachTableLayers(const PathNfa& nfa, size_t max_len,
                            const PathQueryOptions& opts,
                            std::vector<PathNfa::StateMask>* table) {
  KGQ_SPAN("matrix_rpq.reach_table");
  const CsrSnapshot* csr = nfa.snapshot();
  const size_t num_nodes = nfa.num_nodes();
  const size_t num_q = nfa.num_states();

  // Layer 0: identical to the scalar construction — final states at
  // nodes passing the end/avoid restrictions.
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (opts.avoid != kNoNode && n == opts.avoid) continue;
    if (opts.end != kNoNode && n != opts.end) continue;
    (*table)[n] = nfa.final_mask();
  }

  struct FlatTrans {
    uint32_t from;
    uint32_t to;
    uint32_t atom;
    bool backward;
    PathNfa::AtomClass cls;
    LabelId label;
  };
  std::vector<FlatTrans> trans;
  for (const PathNfa::TransitionView& t : nfa.Transitions()) {
    PathNfa::AtomClass cls = nfa.ClassifyAtom(t.atom);
    if (cls == PathNfa::AtomClass::kDead) continue;
    LabelId lab = cls == PathNfa::AtomClass::kLabel
                      ? nfa.AtomSnapshotLabel(t.atom)
                      : kNoLabel;
    trans.push_back({t.from, t.to, t.atom, t.backward, cls, lab});
  }

  size_t grain = std::max<size_t>(16, (num_nodes + 255) / 256);
  std::vector<PathNfa::StateMask> closed_goal(num_nodes, 0);
  for (size_t j = 1; j <= max_len; ++j) {
    const PathNfa::StateMask* goal = table->data() + (j - 1) * num_nodes;
    // closed_goal[v] = { p : closure of {p} at v intersects goal(v) } —
    // distributing the ε-closure of Advance over the product: a
    // transition into raw state p finishes at v iff p ∈ closed_goal(v).
    ParallelFor(
        0, num_nodes, grain,
        [&](size_t lo, size_t hi) {
          for (NodeId v = lo; v < hi; ++v) {
            PathNfa::StateMask cg = 0;
            if (goal[v] != 0) {
              uint32_t sig = nfa.ClosureSignatureOf(v);
              for (uint32_t p = 0; p < num_q; ++p) {
                if (nfa.SignatureClosure(sig, p) & goal[v]) cg |= 1ull << p;
              }
            }
            closed_goal[v] = cg;
          }
        },
        opts.parallel);

    // Layer j: state q finishes in j steps from n iff some transition
    // of q crosses an edge into a node whose closed goal holds the
    // transition's target. One sparse product per transition; forward
    // atoms scan the out-view (self-loops included), backward the
    // in-view — the Advance direction semantics.
    PathNfa::StateMask* layer = table->data() + j * num_nodes;
    ParallelFor(
        0, num_nodes, grain,
        [&](size_t lo, size_t hi) {
          [[maybe_unused]] size_t entries = 0;
          for (NodeId n = lo; n < hi; ++n) {
            if (opts.avoid != kNoNode && n == opts.avoid) continue;
            PathNfa::StateMask result = 0;
            for (const FlatTrans& t : trans) {
              if (result & (1ull << t.from)) continue;
              if (t.cls == PathNfa::AtomClass::kLabel) {
                CsrSnapshot::Span part = t.backward
                                             ? csr->InForLabel(n, t.label)
                                             : csr->OutForLabel(n, t.label);
                entries += part.size();
                for (const CsrSnapshot::Entry& e : part) {
                  if (opts.avoid != kNoNode && e.neighbor == opts.avoid) {
                    continue;
                  }
                  if (closed_goal[e.neighbor] & (1ull << t.to)) {
                    result |= 1ull << t.from;
                    break;
                  }
                }
              } else {
                CsrSnapshot::Span adj = t.backward ? csr->In(n) : csr->Out(n);
                entries += adj.size();
                for (const CsrSnapshot::Entry& e : adj) {
                  if (opts.avoid != kNoNode && e.neighbor == opts.avoid) {
                    continue;
                  }
                  if (!nfa.AtomMatchesEdge(t.atom, e.edge)) continue;
                  if (closed_goal[e.neighbor] & (1ull << t.to)) {
                    result |= 1ull << t.from;
                    break;
                  }
                }
              }
            }
            layer[n] = result;
          }
          if (KGQ_OBS_ON()) {
            KGQ_COUNTER_ADD("matrix_rpq.spgemm.entries", entries);
          }
        },
        opts.parallel);
  }
}

}  // namespace kgq
