#ifndef KGQ_PATHALG_OPTIONS_H_
#define KGQ_PATHALG_OPTIONS_H_

#include "graph/multigraph.h"
#include "util/thread_pool.h"

namespace kgq {

/// Which physical engine evaluates saturating (existential) queries —
/// ReachableFrom / AllPairs and the ReachTable layers.
enum class PathEngine {
  /// Product-configuration BFS per source over the PathNfa (the
  /// reference engine; always available).
  kNfa,
  /// Boolean-semiring matrix fixpoint (pathalg/matrix_rpq): one masked
  /// SpGEMM per iteration covers every source at once, 64 sources per
  /// machine word. Requires an attached CsrSnapshot — silently falls
  /// back to kNfa without one, so requesting it is never wrong.
  kMatrix,
};

/// Restrictions shared by all path algorithms. The unrestricted problem
/// of Section 4.1 uses the defaults; the bc_r computation of Section 4.2
/// uses all three fields (paths from a to b, optionally avoiding x —
/// through-x counts are computed as total minus avoiding).
struct PathQueryOptions {
  /// If set, only paths with start(p) == start.
  NodeId start = kNoNode;
  /// If set, only paths with end(p) == end.
  NodeId end = kNoNode;
  /// If set, only paths that never visit this node.
  NodeId avoid = kNoNode;
  /// Thread budget for the parallel phases (ReachTable layers,
  /// multi-source pair evaluation). Results are identical for every
  /// thread count; see ParallelOptions.
  ParallelOptions parallel;
  /// Physical engine for the saturating entry points. Both engines are
  /// bit-identical (tests/test_regex_fuzz.cc five-way); kMatrix is the
  /// raw-speed play for bulk multi-source workloads.
  PathEngine engine = PathEngine::kNfa;
};

}  // namespace kgq

#endif  // KGQ_PATHALG_OPTIONS_H_
