#ifndef KGQ_PATHALG_OPTIONS_H_
#define KGQ_PATHALG_OPTIONS_H_

#include "graph/multigraph.h"
#include "util/thread_pool.h"

namespace kgq {

/// Restrictions shared by all path algorithms. The unrestricted problem
/// of Section 4.1 uses the defaults; the bc_r computation of Section 4.2
/// uses all three fields (paths from a to b, optionally avoiding x —
/// through-x counts are computed as total minus avoiding).
struct PathQueryOptions {
  /// If set, only paths with start(p) == start.
  NodeId start = kNoNode;
  /// If set, only paths with end(p) == end.
  NodeId end = kNoNode;
  /// If set, only paths that never visit this node.
  NodeId avoid = kNoNode;
  /// Thread budget for the parallel phases (ReachTable layers,
  /// multi-source pair evaluation). Results are identical for every
  /// thread count; see ParallelOptions.
  ParallelOptions parallel;
};

}  // namespace kgq

#endif  // KGQ_PATHALG_OPTIONS_H_
