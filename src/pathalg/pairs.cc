#include "pathalg/pairs.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "pathalg/matrix_rpq.h"
#include "util/thread_pool.h"

namespace kgq {

Bitset ReachableFrom(const PathNfa& nfa, NodeId start,
                     const PathQueryOptions& opts) {
  // Engine dispatch: the matrix fixpoint needs the snapshot's per-label
  // partitions; without one the request silently degrades to the BFS.
  if (opts.engine == PathEngine::kMatrix && nfa.snapshot() != nullptr) {
    Result<Bitset> r = MatrixReachableFrom(nfa, start, opts);
    if (r.ok()) return *std::move(r);
  }
  Bitset out(nfa.num_nodes());
  if (opts.avoid != kNoNode && start == opts.avoid) return out;
  if (opts.start != kNoNode && start != opts.start) return out;

  // Existential semantics only asks whether *some* run reaches a final
  // state, so a BFS over single product states (node, q) suffices — no
  // subset construction, O(n·|Q|) states total.
  std::vector<PathNfa::StateMask> seen(nfa.num_nodes(), 0);
  std::vector<std::pair<NodeId, uint32_t>> frontier;

  PathNfa::StateMask final_mask = nfa.final_mask();
  auto push = [&](NodeId n, PathNfa::StateMask mask) {
    PathNfa::StateMask fresh = mask & ~seen[n];
    if (fresh == 0) return;
    seen[n] |= fresh;
    if (fresh & final_mask) out.Set(n);
    while (fresh != 0) {
      uint32_t q = static_cast<uint32_t>(__builtin_ctzll(fresh));
      fresh &= fresh - 1;
      frontier.emplace_back(n, q);
    }
  };

  // Expansion goes per automaton state (ForEachSuccessor) rather than
  // per step: with a snapshot attached, each pure-label transition
  // scans one contiguous per-label range. Saturation makes the
  // discovery order irrelevant — `seen` converges to the same fixpoint
  // as the step-at-a-time reference.
  push(start, nfa.StartMask(start));
  while (!frontier.empty()) {
    auto [n, q] = frontier.back();
    frontier.pop_back();
    nfa.ForEachSuccessor(n, q, [&](NodeId to, uint32_t to_state) {
      if (opts.avoid != kNoNode && to == opts.avoid) return;
      push(to, nfa.CloseAt(to, 1ull << to_state));
    });
  }

  if (opts.end != kNoNode) {
    Bitset only_end(nfa.num_nodes());
    if (out.Test(opts.end)) only_end.Set(opts.end);
    return only_end;
  }
  return out;
}

std::vector<Bitset> AllPairs(const PathNfa& nfa,
                             const PathQueryOptions& opts) {
  size_t n = nfa.num_nodes();
  // Engine dispatch: all-pairs is the workload the matrix engine exists
  // for — every node is a source, so 64 searches share each word-OR of
  // the fixpoint instead of running 64 separate BFS traversals.
  if (opts.engine == PathEngine::kMatrix && nfa.snapshot() != nullptr &&
      opts.start == kNoNode) {
    Result<std::vector<Bitset>> r = MatrixAllPairs(nfa, opts);
    if (r.ok()) return *std::move(r);
  }
  std::vector<Bitset> out(n);
  // Chunked multi-source evaluation: each source BFS is independent and
  // writes only its own row, so source chunks run in parallel. Rows are
  // exact bit sets — the schedule cannot change the result.
  size_t grain = std::max<size_t>(1, (n + 127) / 128);
  ParallelFor(
      0, n, grain,
      [&](size_t lo, size_t hi) {
        for (NodeId a = lo; a < hi; ++a) {
          if (opts.start != kNoNode && a != opts.start) {
            out[a] = Bitset(n);
          } else {
            out[a] = ReachableFrom(nfa, a, opts);
          }
        }
      },
      opts.parallel);
  return out;
}

double CountPairs(const PathNfa& nfa, const PathQueryOptions& opts) {
  double total = 0.0;
  for (const Bitset& row : AllPairs(nfa, opts)) {
    total += static_cast<double>(row.Count());
  }
  return total;
}

}  // namespace kgq
