#include "pathalg/exact.h"

#include <cassert>
#include <queue>

#include "obs/obs.h"

namespace kgq {

ExactPathIndex::ExactPathIndex(const PathNfa& nfa, size_t max_len,
                               const PathQueryOptions& opts)
    : nfa_(nfa), max_len_(max_len), opts_(opts), memo_(max_len + 1) {}

bool ExactPathIndex::StartAllowed(NodeId n) const {
  if (opts_.start != kNoNode && n != opts_.start) return false;
  if (opts_.avoid != kNoNode && n == opts_.avoid) return false;
  return true;
}

double ExactPathIndex::Suffixes(size_t remaining, const Config& c) {
  if (remaining == 0) {
    bool ok = nfa_.Accepting(c.mask) &&
              (opts_.end == kNoNode || c.node == opts_.end);
    return ok ? 1.0 : 0.0;
  }
  auto it = memo_[remaining].find(c);
  if (it != memo_[remaining].end()) return it->second;
  double total = 0.0;
  nfa_.ForEachStep(c.node, [&](const PathNfa::Step& s) {
    if (opts_.avoid != kNoNode && s.to == opts_.avoid) return;
    PathNfa::StateMask next = nfa_.Advance(c.mask, s);
    if (next == 0) return;
    total += Suffixes(remaining - 1, Config{s.to, next});
  });
  memo_[remaining][c] = total;
  return total;
}

double ExactPathIndex::Count(size_t length) {
  assert(length <= max_len_);
  KGQ_SPAN("pathalg.exact.count");
  double total = 0.0;
  for (NodeId n = 0; n < nfa_.num_nodes(); ++n) {
    if (!StartAllowed(n)) continue;
    total += Suffixes(length, Config{n, nfa_.StartMask(n)});
  }
  // DP table pressure of the memoized suffix recursion: the number of
  // (node, mask) configurations materialized across all layers so far.
  KGQ_GAUGE_SET("pathalg.exact.dp_configs", num_configs());
  return total;
}

double ExactPathIndex::CountUpTo(size_t length) {
  assert(length <= max_len_);
  double total = 0.0;
  for (size_t j = 0; j <= length; ++j) total += Count(j);
  return total;
}

Result<Path> ExactPathIndex::Sample(size_t length, Rng* rng) {
  assert(length <= max_len_);
  // Start-node weights.
  std::vector<NodeId> starts;
  std::vector<double> weights;
  for (NodeId n = 0; n < nfa_.num_nodes(); ++n) {
    if (!StartAllowed(n)) continue;
    double w = Suffixes(length, Config{n, nfa_.StartMask(n)});
    if (w > 0.0) {
      starts.push_back(n);
      weights.push_back(w);
    }
  }
  if (starts.empty()) {
    return Status::NotFound("no conforming path of length " +
                            std::to_string(length));
  }
  Config c{starts[rng->WeightedIndex(weights)], 0};
  c.mask = nfa_.StartMask(c.node);

  Path path = Path::Trivial(c.node);
  for (size_t remaining = length; remaining > 0; --remaining) {
    std::vector<PathNfa::Step> steps;
    std::vector<Config> nexts;
    std::vector<double> step_weights;
    nfa_.ForEachStep(c.node, [&](const PathNfa::Step& s) {
      if (opts_.avoid != kNoNode && s.to == opts_.avoid) return;
      PathNfa::StateMask m = nfa_.Advance(c.mask, s);
      if (m == 0) return;
      Config next{s.to, m};
      double w = Suffixes(remaining - 1, next);
      if (w > 0.0) {
        steps.push_back(s);
        nexts.push_back(next);
        step_weights.push_back(w);
      }
    });
    assert(!steps.empty());
    size_t pick = rng->WeightedIndex(step_weights);
    path.edges.push_back(steps[pick].edge);
    path.nodes.push_back(steps[pick].to);
    c = nexts[pick];
  }
  return path;
}

Result<Path> ExactPathIndex::SampleUpTo(size_t length, Rng* rng) {
  assert(length <= max_len_);
  std::vector<double> weights(length + 1);
  double total = 0.0;
  for (size_t j = 0; j <= length; ++j) {
    weights[j] = Count(j);
    total += weights[j];
  }
  if (total <= 0.0) {
    return Status::NotFound("no conforming path of length <= " +
                            std::to_string(length));
  }
  return Sample(rng->WeightedIndex(weights), rng);
}

size_t ExactPathIndex::num_configs() const {
  size_t total = 0;
  for (const auto& layer : memo_) total += layer.size();
  return total;
}

std::vector<std::optional<size_t>> ShortestAcceptedLengths(
    const PathNfa& nfa, NodeId start, size_t max_len,
    const PathQueryOptions& opts) {
  std::vector<std::optional<size_t>> dist(nfa.num_nodes());
  if (opts.avoid != kNoNode && start == opts.avoid) return dist;

  // BFS over configurations; a configuration repeats only with the same
  // or longer distance, so a visited set gives shortest lengths.
  struct Config {
    NodeId node;
    PathNfa::StateMask mask;
  };
  // Visited set over (node, mask) configurations.
  auto key = [&](const Config& c) {
    return (static_cast<uint64_t>(c.node) << 7) ^
           (c.mask * 0x9E3779B97F4A7C15ull) ^ c.mask;
  };
  std::unordered_map<uint64_t, std::vector<Config>> visited;
  auto mark = [&](const Config& c) -> bool {
    auto& bucket = visited[key(c)];
    for (const Config& v : bucket) {
      if (v.node == c.node && v.mask == c.mask) return false;
    }
    bucket.push_back(c);
    return true;
  };

  std::vector<Config> frontier;
  Config init{start, nfa.StartMask(start)};
  mark(init);
  frontier.push_back(init);

  for (size_t layer = 0; layer <= max_len; ++layer) {
    KGQ_HISTOGRAM_RECORD("pathalg.bfs.frontier_size", frontier.size());
    for (const Config& c : frontier) {
      if (!dist[c.node].has_value() && nfa.Accepting(c.mask)) {
        dist[c.node] = layer;
      }
    }
    if (layer == max_len) break;
    std::vector<Config> next_frontier;
    for (const Config& c : frontier) {
      nfa.ForEachStep(c.node, [&](const PathNfa::Step& s) {
        if (opts.avoid != kNoNode && s.to == opts.avoid) return;
        PathNfa::StateMask m = nfa.Advance(c.mask, s);
        if (m == 0) return;
        Config next{s.to, m};
        if (mark(next)) next_frontier.push_back(next);
      });
    }
    frontier = std::move(next_frontier);
    if (frontier.empty()) break;
  }
  return dist;
}

}  // namespace kgq
