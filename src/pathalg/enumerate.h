#ifndef KGQ_PATHALG_ENUMERATE_H_
#define KGQ_PATHALG_ENUMERATE_H_

#include <cstddef>
#include <vector>

#include "pathalg/options.h"
#include "pathalg/reach.h"
#include "rpq/path.h"
#include "rpq/path_nfa.h"

namespace kgq {

/// Polynomial-delay enumeration of the distinct paths of length exactly
/// k conforming to a query (Section 4.1's enumeration paradigm).
///
/// Construction is the *preprocessing phase*: it builds the backward
/// reachability table (O(k·m·|Q|)). Next() is the *enumeration phase*: a
/// flashlight DFS over configurations that only ever descends into
/// subtrees guaranteed to contain an answer, so the delay between
/// consecutive answers is O(k · Δ · |Q|) where Δ is the maximum degree —
/// polynomial and independent of the (possibly exponential) answer count.
///
/// Distinctness: a path determines its configuration sequence uniquely,
/// so the DFS tree visits each conforming path exactly once — no
/// post-hoc deduplication is ever needed (this is the ablation point of
/// experiment E8 against run-level DFS, which must deduplicate).
class PathEnumerator {
 public:
  /// Preprocesses for paths of length exactly `length`.
  PathEnumerator(const PathNfa& nfa, size_t length,
                 const PathQueryOptions& opts = {});

  /// Produces the next path; returns false when exhausted. When obs
  /// collection is on, each successful call records its duration into
  /// the `pathalg.enumerate.delay_ns` histogram — the paper's
  /// per-answer delay, measured at the source.
  bool Next(Path* out);

  /// Enumerates everything into a vector (convenience; beware blowup).
  std::vector<Path> Drain();

 private:
  /// A viable continuation out of a frame: the step plus the (already
  /// advanced, guaranteed nonzero and finishable) mask at step.to.
  struct Branch {
    PathNfa::Step step;
    PathNfa::StateMask mask;
  };
  struct Frame {
    NodeId node;
    PathNfa::StateMask mask;
    EdgeId in_edge;                // Edge taken into this frame (kNoEdge at root).
    std::vector<Branch> branches;  // Viable steps out of this frame.
    size_t next_branch = 0;        // Cursor into branches.
  };

  /// Pushes a frame for (node, mask); fills its viable branches when the
  /// frame is not at full depth.
  void PushFrame(NodeId node, PathNfa::StateMask mask, EdgeId in_edge);

  /// Seeds the stack with the next viable start node; false if none left.
  bool AdvanceStart();

  /// The uninstrumented enumeration step behind Next().
  bool NextInternal(Path* out);

  const PathNfa& nfa_;
  size_t length_;
  PathQueryOptions opts_;
  ReachTable reach_;

  NodeId next_start_ = 0;     // Next start node to try.
  std::vector<Frame> stack_;  // DFS stack; stack_[i] is depth i.
};

}  // namespace kgq

#endif  // KGQ_PATHALG_ENUMERATE_H_
