#include "pathalg/reach.h"

#include <algorithm>

#include "obs/obs.h"
#include "pathalg/matrix_rpq.h"
#include "util/thread_pool.h"

namespace kgq {

ReachTable::ReachTable(const PathNfa& nfa, size_t max_len,
                       const PathQueryOptions& opts)
    : num_nodes_(nfa.num_nodes()),
      max_len_(max_len),
      table_((max_len + 1) * nfa.num_nodes(), 0) {
  KGQ_SPAN("reach_table.build");
  KGQ_COUNTER_INC("pathalg.reach.builds");
  // Engine dispatch: the matrix construction fills all layers (including
  // layer 0) with masks bit-identical to the scalar loops below.
  if (opts.engine == PathEngine::kMatrix && nfa.snapshot() != nullptr) {
    MatrixReachTableLayers(nfa, max_len, opts, &table_);
    return;
  }
  // Layer 0: a length-0 suffix is accepted iff the state itself is final
  // (masks held by callers are ε-closed, so no closure is needed here)
  // and the node satisfies the end restriction.
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (opts.avoid != kNoNode && n == opts.avoid) continue;
    if (opts.end != kNoNode && n != opts.end) continue;
    table_[n] = nfa.final_mask();
  }

  PathNfa::StateMask all =
      ~0ull >> (64 - (nfa.num_states() == 64 ? 64 : nfa.num_states()));
  size_t grain = std::max<size_t>(16, (num_nodes_ + 255) / 256);

  // Layer j from layer j-1: q can finish in j steps from n iff some step
  // s out of n leads to a state set intersecting the (j-1)-finishers at
  // s.to. Rows of layer j only read layer j-1 and write disjoint slots,
  // so each layer is a parallel map over nodes.
  for (size_t j = 1; j <= max_len_; ++j) {
    ParallelFor(
        0, num_nodes_, grain,
        [&](size_t lo, size_t hi) {
          for (NodeId n = lo; n < hi; ++n) {
            if (opts.avoid != kNoNode && n == opts.avoid) continue;
            PathNfa::StateMask result = 0;
            nfa.ForEachStep(n, [&](const PathNfa::Step& s) {
              if (opts.avoid != kNoNode && s.to == opts.avoid) return;
              PathNfa::StateMask goal = table_[(j - 1) * num_nodes_ + s.to];
              if (goal == 0) return;
              // Which q have AdvanceSingle(q, s) ∩ goal ≠ 0?
              PathNfa::StateMask rest = all & ~result;
              while (rest != 0) {
                uint32_t q = static_cast<uint32_t>(__builtin_ctzll(rest));
                rest &= rest - 1;
                if (nfa.AdvanceSingle(q, s) & goal) result |= 1ull << q;
              }
            });
            table_[j * num_nodes_ + n] = result;
          }
        },
        opts.parallel);
  }
}

}  // namespace kgq
