#ifndef KGQ_PATHALG_PAIRS_H_
#define KGQ_PATHALG_PAIRS_H_

#include <vector>

#include "pathalg/options.h"
#include "rpq/path_nfa.h"
#include "util/bitset.h"

namespace kgq {

/// Existential (pair) semantics for regular path queries — what SPARQL
/// property paths and most graph query languages return: the set of
/// pairs (a, b) such that *some* path from a to b conforms to the query,
/// with no length bound. Computed per start node by a BFS over
/// configurations (node, ε-closed state set), which saturates because
/// configurations are finitely many.
///
/// This is the polynomial-time face of RPQ evaluation; counting or
/// enumerating the underlying paths is where Section 4.1's machinery
/// takes over.

/// Nodes b reachable from `start` via some conforming path (of any
/// length, respecting opts.avoid).
Bitset ReachableFrom(const PathNfa& nfa, NodeId start,
                     const PathQueryOptions& opts = {});

/// All pairs: result[a] = ReachableFrom(a). O(n · BFS).
std::vector<Bitset> AllPairs(const PathNfa& nfa,
                             const PathQueryOptions& opts = {});

/// Number of conforming pairs (Σ_a |result[a]|).
double CountPairs(const PathNfa& nfa, const PathQueryOptions& opts = {});

}  // namespace kgq

#endif  // KGQ_PATHALG_PAIRS_H_
