#ifndef KGQ_PATHALG_SIMPLE_PATHS_H_
#define KGQ_PATHALG_SIMPLE_PATHS_H_

#include <functional>

#include "pathalg/options.h"
#include "rpq/path.h"
#include "rpq/path_nfa.h"

namespace kgq {

/// Simple-path semantics for regular path queries: conforming paths that
/// never repeat a node. This is the semantics an early SPARQL 1.1 draft
/// mandated; deciding existence is already NP-hard and counting is
/// #P-hard (Losemann–Martens; Arenas–Conca–Pérez "counting beyond a
/// yottabyte", both cited in Section 4.1), which is why the paper's
/// toolbox works with walks instead. This module exists to *measure*
/// that contrast (bench E9): the DFS below is inherently exponential.
///
/// Enumerates every simple path p ∈ ⟦r⟧ with |p| ≤ max_length (a simple
/// path has |p| < n anyway; pass n to remove the cap). Returns the count;
/// `sink` may be null when only the count is wanted. Stops early (and
/// returns what it has) once `budget` paths have been produced.
double EnumerateSimplePaths(const PathNfa& nfa, size_t max_length,
                            const PathQueryOptions& opts,
                            const std::function<void(const Path&)>& sink,
                            double budget = 1e18);

/// Count-only convenience.
double CountSimplePaths(const PathNfa& nfa, size_t max_length,
                        const PathQueryOptions& opts = {});

}  // namespace kgq

#endif  // KGQ_PATHALG_SIMPLE_PATHS_H_
