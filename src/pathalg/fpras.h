#ifndef KGQ_PATHALG_FPRAS_H_
#define KGQ_PATHALG_FPRAS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pathalg/options.h"
#include "pathalg/reach.h"
#include "rpq/path.h"
#include "rpq/path_nfa.h"
#include "util/result.h"
#include "util/rng.h"

namespace kgq {

/// Tuning knobs for the randomized counter. The theoretical algorithm
/// (Arenas–Croquevielle–Jayaram–Riveros, PODS 2019) takes an error ε and
/// derives polynomial sample sizes; practice exposes the two budgets
/// directly. FromEpsilon() maps an ε to budgets that empirically achieve
/// relative error ≤ ε with high probability (validated by experiment E1).
struct FprasOptions {
  /// Per-(state, layer) cap on retained uniform samples.
  size_t samples_per_state = 64;
  /// Monte-Carlo trials per union estimate (Karp–Luby estimator).
  size_t union_trials = 128;
  /// Seed of the preprocessing randomness.
  uint64_t seed = 0x5EEDACull;

  /// Budgets scaled as ~1/ε²: the standard deviation of the Karp–Luby
  /// estimator shrinks as trials^-1/2.
  static FprasOptions FromEpsilon(double epsilon);
};

/// Randomized approximate counting and (approximately) uniform
/// generation of conforming paths — the Section 4.1 FPRAS.
///
/// Structure follows ACJR: let W(s, i) be the set of distinct paths of
/// length i whose run can occupy product state s = (node, q). Layer by
/// layer the algorithm keeps, per useful state, (a) an estimate of
/// |W(s,i)| and (b) a bounded pool of ≈uniform samples of W(s,i). The
/// layer recurrence W(s,i) = ∪_components W(pred, i-1)·step is a union of
/// overlapping sets, estimated with the Karp–Luby union estimator:
/// sample a component proportionally to its estimated size, draw an
/// element, and weight it by 1/(number of components containing it) —
/// the membership count is a popcount because every retained sample
/// carries its full simulation mask.
///
/// "Useful" states are those both forward-reachable and backward-viable
/// (via ReachTable), so effort concentrates where answers live.
///
/// Construction is the preprocessing phase; Estimate() is O(1), and
/// Sample() regenerates fresh paths top-down through the layered
/// structure (the generation phase the paper describes).
class FprasPathCounter {
 public:
  FprasPathCounter(const PathNfa& nfa, size_t length,
                   const PathQueryOptions& opts = {},
                   const FprasOptions& fopts = {});

  /// Estimated number of distinct conforming paths of length exactly
  /// `length`.
  double Estimate() const { return total_estimate_; }

  /// Draws a fresh, approximately uniform conforming path. Fails with
  /// NotFound when the estimate is zero.
  Result<Path> Sample(Rng* rng) const;

  /// Number of (state, layer) sketches retained — the preprocessing
  /// footprint.
  size_t num_sketches() const;

 private:
  using StateMask = PathNfa::StateMask;

  /// A retained element of W(s, i): the encoded path prefix plus its
  /// full simulation mask (enabling O(1) membership counts).
  struct SampleWord {
    // enc[0] = start node; enc[j>0] = (edge << 1) | backward.
    std::vector<uint32_t> enc;
    StateMask mask;
  };

  /// One component of the union defining W(s, i).
  struct Component {
    uint64_t pred_key;     ///< Key of the predecessor sketch (layer i-1).
    PathNfa::Step step;    ///< The appended step.
    StateMask pred_set;    ///< PredMask(q, step) ∩ kept(pred node, i-1).
    double weight;         ///< Estimated |W(pred, i-1)|.
  };

  struct Sketch {
    double estimate = 0.0;
    std::vector<SampleWord> samples;
    std::vector<Component> components;  // Empty at layer 0.
  };

  uint64_t Key(NodeId n, uint32_t q) const {
    return static_cast<uint64_t>(n) * nfa_.num_states() + q;
  }

  void Preprocess(Rng* rng);

  /// Draws (with replacement) a stored sample of `sketch`.
  const SampleWord& DrawStored(const Sketch& sketch, Rng* rng) const;

  /// Regenerates a fresh ≈uniform element of W(state at `layer`).
  /// Falls back to a stored sample after too many rejections.
  SampleWord FreshSample(const Sketch& sketch, size_t layer,
                         Rng* rng) const;

  Path Decode(const SampleWord& word) const;

  const PathNfa& nfa_;
  size_t length_;
  PathQueryOptions opts_;
  FprasOptions fopts_;
  ReachTable reach_;

  /// layers_[i] maps state key → sketch of W(state, i).
  std::vector<std::unordered_map<uint64_t, Sketch>> layers_;
  /// kept_[i][n] = mask of automaton states with a sketch at (n, i).
  std::vector<std::vector<StateMask>> kept_;

  /// Final-layer accepting components for Estimate()/Sample(): per node,
  /// the union over final states (usually a single component with
  /// Thompson automata).
  struct FinalComponent {
    NodeId node;
    uint32_t q;
    double weight;
  };
  std::vector<FinalComponent> final_components_;
  double total_estimate_ = 0.0;
};

/// One-shot convenience: approximate Count(L, r, k).
double ApproxCount(const PathNfa& nfa, size_t length,
                   const PathQueryOptions& opts = {},
                   const FprasOptions& fopts = {});

}  // namespace kgq

#endif  // KGQ_PATHALG_FPRAS_H_
