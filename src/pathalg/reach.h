#ifndef KGQ_PATHALG_REACH_H_
#define KGQ_PATHALG_REACH_H_

#include <cstddef>
#include <vector>

#include "pathalg/options.h"
#include "rpq/path_nfa.h"

namespace kgq {

/// Backward reachability table over the product automaton:
/// Mask(j, n) is the set of automaton states q such that some accepted
/// path suffix of length exactly j exists from configuration (n, {q})
/// (respecting the end/avoid restrictions in `opts`).
///
/// This is the polynomial preprocessing structure shared by the
/// enumeration algorithm (where it prunes the flashlight DFS so that
/// every descent yields an answer — the source of the polynomial delay)
/// and by the FPRAS (where it prunes sketches to useful states).
class ReachTable {
 public:
  /// Builds the table for suffix lengths 0..max_len. O(max_len · m · |Q|).
  ReachTable(const PathNfa& nfa, size_t max_len,
             const PathQueryOptions& opts);

  /// States with an accepted suffix of length exactly j from node n.
  PathNfa::StateMask Mask(size_t j, NodeId n) const {
    return table_[j * num_nodes_ + n];
  }

  /// True iff some state in `m` has an accepted suffix of length j at n.
  bool CanFinish(size_t j, NodeId n, PathNfa::StateMask m) const {
    return (Mask(j, n) & m) != 0;
  }

  size_t max_len() const { return max_len_; }

 private:
  size_t num_nodes_;
  size_t max_len_;
  std::vector<PathNfa::StateMask> table_;  // (max_len+1) × num_nodes.
};

}  // namespace kgq

#endif  // KGQ_PATHALG_REACH_H_
