#ifndef KGQ_PATHALG_CFPQ_MATRIX_H_
#define KGQ_PATHALG_CFPQ_MATRIX_H_

#include <cstdint>

#include "graph/csr_snapshot.h"
#include "pathalg/matrix_rpq.h"
#include "rpq/path_expr.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace kgq {

/// Context-free path queries on the matrix substrate: the pair relation
/// of a CNF-normalized grammar's nonterminal, computed as a semi-naive
/// least fixpoint over one BoolCsr relation per nonterminal.
///
/// Seeds: nullable nonterminals start at the identity diagonal (the
/// length-0 derivation), terminal productions at the per-label adjacency
/// matrices (BoolCsrForLabel, transposed for `^-`). Rounds then apply
///
///   * every binary production A → X Y as two masked delta products
///     (Δ[X] × R[Y]) \ R[A]  ∪  (R[X] × Δ[Y]) \ R[A]
///     — BoolSpGemmDelta, the incremental-closure kernel, so each round
///     touches only rows the previous round's new facts can still grow;
///   * every unit production A → B as Δ[B] \ R[A];
///
/// new facts are unioned into the relations and become the next round's
/// deltas; the fixpoint is reached when every delta is empty. The result
/// is canonical sorted CSR, schedule-independent, and bit-identical to
/// the naive CYK-style reference (rpq/cfpq_reference.h) at any thread
/// count — the CFPQ differential gate.
///
/// obs: histogram cfpq.fixpoint_rounds (rounds to fixpoint per solve);
/// counter cfpq.spgemm.entries (new closure facts discovered across all
/// rounds — the relation growth the products paid for); the executor
/// wraps calls in the plan.op.cfpq span.
Result<BoolCsr> CfpqSolveMatrix(const CsrSnapshot& snap,
                                const CnfGrammar& grammar,
                                uint32_t nonterminal,
                                const ParallelOptions& par = {});

}  // namespace kgq

#endif  // KGQ_PATHALG_CFPQ_MATRIX_H_
