#include "pathalg/fpras.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/obs.h"

namespace kgq {
namespace {

int Popcount(uint64_t x) { return __builtin_popcountll(x); }

}  // namespace

FprasOptions FprasOptions::FromEpsilon(double epsilon) {
  epsilon = std::clamp(epsilon, 0.01, 1.0);
  FprasOptions opts;
  opts.union_trials =
      static_cast<size_t>(std::ceil(1.5 / (epsilon * epsilon)));
  opts.samples_per_state = std::clamp<size_t>(
      static_cast<size_t>(std::ceil(0.75 / (epsilon * epsilon))), 16, 2048);
  return opts;
}

FprasPathCounter::FprasPathCounter(const PathNfa& nfa, size_t length,
                                   const PathQueryOptions& opts,
                                   const FprasOptions& fopts)
    : nfa_(nfa),
      length_(length),
      opts_(opts),
      fopts_(fopts),
      reach_(nfa, length, opts),
      layers_(length + 1),
      kept_(length + 1,
            std::vector<StateMask>(nfa.num_nodes(), 0)) {
  Rng rng(fopts.seed);
  Preprocess(&rng);
}

void FprasPathCounter::Preprocess(Rng* rng) {
  KGQ_SPAN("fpras.preprocess");
  KGQ_COUNTER_INC("pathalg.fpras.preprocess_calls");
  // Karp–Luby sample accounting across the whole layer recurrence:
  // trials drawn vs samples that survived the 1/c uniformization.
  uint64_t samples_drawn = 0;
  uint64_t samples_accepted = 0;
  const size_t n_nodes = nfa_.num_nodes();

  // Forward-reachable masks per layer (cheap determinized sweep).
  std::vector<StateMask> reachable(n_nodes, 0);
  for (NodeId n = 0; n < n_nodes; ++n) {
    if (opts_.start != kNoNode && n != opts_.start) continue;
    if (opts_.avoid != kNoNode && n == opts_.avoid) continue;
    reachable[n] = nfa_.StartMask(n);
  }

  // Layer 0 sketches: W((n,q),0) = { trivial path at n } for q in the
  // start mask; useful states only.
  for (NodeId n = 0; n < n_nodes; ++n) {
    StateMask useful = reachable[n] & reach_.Mask(length_, n);
    if (useful == 0) continue;
    kept_[0][n] = useful;
    StateMask rest = useful;
    while (rest != 0) {
      uint32_t q = static_cast<uint32_t>(__builtin_ctzll(rest));
      rest &= rest - 1;
      Sketch sketch;
      sketch.estimate = 1.0;
      sketch.samples.push_back(
          SampleWord{{static_cast<uint32_t>(n)}, reachable[n]});
      layers_[0].emplace(Key(n, q), std::move(sketch));
    }
  }

  // Layer recurrence.
  for (size_t i = 1; i <= length_; ++i) {
    // Advance forward reachability.
    std::vector<StateMask> next_reachable(n_nodes, 0);
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (reachable[n] == 0) continue;
      nfa_.ForEachStep(n, [&](const PathNfa::Step& s) {
        if (opts_.avoid != kNoNode && s.to == opts_.avoid) return;
        next_reachable[s.to] |= nfa_.Advance(reachable[n], s);
      });
    }
    reachable = std::move(next_reachable);

    for (NodeId n = 0; n < n_nodes; ++n) {
      StateMask useful = reachable[n] & reach_.Mask(length_ - i, n);
      if (useful == 0) continue;
      kept_[i][n] = useful;
    }

    for (NodeId n = 0; n < n_nodes; ++n) {
      StateMask useful = kept_[i][n];
      StateMask rest = useful;
      while (rest != 0) {
        uint32_t q = static_cast<uint32_t>(__builtin_ctzll(rest));
        rest &= rest - 1;

        Sketch sketch;
        // Build the union components: for each incoming step, the
        // predecessor states that can produce q.
        nfa_.ForEachStepInto(n, [&](const PathNfa::Step& s) {
          StateMask preds =
              nfa_.PredMask(q, s) & kept_[i - 1][s.from];
          StateMask prest = preds;
          while (prest != 0) {
            uint32_t p = static_cast<uint32_t>(__builtin_ctzll(prest));
            prest &= prest - 1;
            uint64_t pk = Key(s.from, p);
            auto it = layers_[i - 1].find(pk);
            assert(it != layers_[i - 1].end());
            sketch.components.push_back(
                Component{pk, s, preds, it->second.estimate});
          }
        });
        if (sketch.components.empty()) continue;

        double total_weight = 0.0;
        for (const Component& c : sketch.components) {
          total_weight += c.weight;
        }
        if (total_weight <= 0.0) continue;

        // Cumulative weights for proportional component selection.
        std::vector<double> cumulative(sketch.components.size());
        double acc = 0.0;
        for (size_t ci = 0; ci < sketch.components.size(); ++ci) {
          acc += sketch.components[ci].weight;
          cumulative[ci] = acc;
        }
        auto pick_component = [&]() -> const Component& {
          double target = rng->NextDouble() * total_weight;
          size_t idx = static_cast<size_t>(
              std::lower_bound(cumulative.begin(), cumulative.end(),
                               target) -
              cumulative.begin());
          if (idx >= sketch.components.size()) {
            idx = sketch.components.size() - 1;
          }
          return sketch.components[idx];
        };

        // Karp–Luby trials: estimate |union| = total_weight · E[1/c].
        double sum_inverse = 0.0;
        size_t trials = fopts_.union_trials;
        samples_drawn += trials;
        for (size_t t = 0; t < trials; ++t) {
          const Component& comp = pick_component();
          const Sketch& pred_sketch = layers_[i - 1].at(comp.pred_key);
          const SampleWord& base = DrawStored(pred_sketch, rng);
          StateMask advanced = nfa_.Advance(base.mask, comp.step);
          int c = Popcount(comp.pred_set & base.mask);
          assert(c >= 1);
          sum_inverse += 1.0 / c;
          // Karp–Luby uniformization: keep with probability 1/c.
          if (sketch.samples.size() < fopts_.samples_per_state &&
              rng->Below(static_cast<uint64_t>(c)) == 0) {
            SampleWord word;
            word.enc = base.enc;
            word.enc.push_back((comp.step.edge << 1) |
                               (comp.step.backward ? 1u : 0u));
            word.mask = advanced;
            sketch.samples.push_back(std::move(word));
            ++samples_accepted;
          }
        }
        sketch.estimate = total_weight * sum_inverse /
                          static_cast<double>(trials);

        // Guarantee at least one sample for downstream layers.
        size_t guard = 64 * nfa_.num_states() + 64;
        while (sketch.samples.empty() && guard-- > 0) {
          ++samples_drawn;
          const Component& comp = pick_component();
          const Sketch& pred_sketch = layers_[i - 1].at(comp.pred_key);
          const SampleWord& base = DrawStored(pred_sketch, rng);
          int c = Popcount(comp.pred_set & base.mask);
          if (rng->Below(static_cast<uint64_t>(c)) == 0) {
            SampleWord word;
            word.enc = base.enc;
            word.enc.push_back((comp.step.edge << 1) |
                               (comp.step.backward ? 1u : 0u));
            word.mask = nfa_.Advance(base.mask, comp.step);
            sketch.samples.push_back(std::move(word));
            ++samples_accepted;
          }
        }
        if (sketch.samples.empty() || sketch.estimate <= 0.0) continue;

        layers_[i].emplace(Key(n, q), std::move(sketch));
      }
    }

    // Drop kept bits whose sketch was discarded (estimate collapsed).
    for (NodeId n = 0; n < n_nodes; ++n) {
      StateMask mask = kept_[i][n];
      StateMask rest = mask;
      while (rest != 0) {
        uint32_t q = static_cast<uint32_t>(__builtin_ctzll(rest));
        rest &= rest - 1;
        if (layers_[i].find(Key(n, q)) == layers_[i].end()) {
          mask &= ~(1ull << q);
        }
      }
      kept_[i][n] = mask;
    }
  }

  // Final union: per node, the accepting states' W sets overlap; the
  // union over final states is again Karp–Luby estimated. Different end
  // nodes are disjoint, so node estimates add up.
  StateMask final_mask = nfa_.final_mask();
  total_estimate_ = 0.0;
  for (NodeId n = 0; n < nfa_.num_nodes(); ++n) {
    StateMask finals = kept_[length_][n] & final_mask;
    if (finals == 0) continue;
    std::vector<FinalComponent> comps;
    double total_weight = 0.0;
    StateMask rest = finals;
    while (rest != 0) {
      uint32_t q = static_cast<uint32_t>(__builtin_ctzll(rest));
      rest &= rest - 1;
      double w = layers_[length_].at(Key(n, q)).estimate;
      comps.push_back(FinalComponent{n, q, w});
      total_weight += w;
    }
    double node_estimate;
    if (comps.size() == 1) {
      node_estimate = total_weight;
    } else {
      std::vector<double> weights;
      for (const FinalComponent& c : comps) weights.push_back(c.weight);
      double sum_inverse = 0.0;
      for (size_t t = 0; t < fopts_.union_trials; ++t) {
        const FinalComponent& comp = comps[rng->WeightedIndex(weights)];
        const Sketch& sk = layers_[length_].at(Key(n, comp.q));
        const SampleWord& word = DrawStored(sk, rng);
        int c = Popcount(word.mask & finals);
        assert(c >= 1);
        sum_inverse += 1.0 / c;
      }
      node_estimate = total_weight * sum_inverse /
                      static_cast<double>(fopts_.union_trials);
    }
    for (FinalComponent& c : comps) final_components_.push_back(c);
    total_estimate_ += node_estimate;
  }

  if (KGQ_OBS_ON()) {
    KGQ_COUNTER_ADD("pathalg.fpras.samples_drawn", samples_drawn);
    KGQ_COUNTER_ADD("pathalg.fpras.samples_accepted", samples_accepted);
    KGQ_GAUGE_SET("pathalg.fpras.sketches", num_sketches());
  }
}

const FprasPathCounter::SampleWord& FprasPathCounter::DrawStored(
    const Sketch& sketch, Rng* rng) const {
  assert(!sketch.samples.empty());
  return sketch.samples[rng->Below(sketch.samples.size())];
}

FprasPathCounter::SampleWord FprasPathCounter::FreshSample(
    const Sketch& sketch, size_t layer, Rng* rng) const {
  if (layer == 0 || sketch.components.empty()) {
    return DrawStored(sketch, rng);
  }
  std::vector<double> weights;
  weights.reserve(sketch.components.size());
  for (const Component& c : sketch.components) weights.push_back(c.weight);

  size_t retries = 8 * nfa_.num_states() + 8;
  while (retries-- > 0) {
    const Component& comp = sketch.components[rng->WeightedIndex(weights)];
    const Sketch& pred = layers_[layer - 1].at(comp.pred_key);
    SampleWord base = FreshSample(pred, layer - 1, rng);
    int c = Popcount(comp.pred_set & base.mask);
    assert(c >= 1);
    if (rng->Below(static_cast<uint64_t>(c)) != 0) continue;
    base.enc.push_back((comp.step.edge << 1) |
                       (comp.step.backward ? 1u : 0u));
    base.mask = nfa_.Advance(base.mask, comp.step);
    return base;
  }
  return DrawStored(sketch, rng);  // Rejection budget exhausted.
}

Result<Path> FprasPathCounter::Sample(Rng* rng) const {
  KGQ_COUNTER_INC("pathalg.fpras.sample_calls");
  if (final_components_.empty() || total_estimate_ <= 0.0) {
    return Status::NotFound("no conforming path of length " +
                            std::to_string(length_));
  }
  std::vector<double> weights;
  weights.reserve(final_components_.size());
  for (const FinalComponent& c : final_components_) {
    weights.push_back(c.weight);
  }
  StateMask final_mask = nfa_.final_mask();
  size_t retries = 8 * nfa_.num_states() + 8;
  while (retries-- > 0) {
    const FinalComponent& comp =
        final_components_[rng->WeightedIndex(weights)];
    const Sketch& sk = layers_[length_].at(Key(comp.node, comp.q));
    SampleWord word = FreshSample(sk, length_, rng);
    StateMask finals = kept_[length_][comp.node] & final_mask;
    int c = Popcount(word.mask & finals);
    if (c < 1) continue;
    if (rng->Below(static_cast<uint64_t>(c)) != 0) continue;
    return Decode(word);
  }
  // Rejection budget exhausted: return a stored accepted sample.
  const FinalComponent& comp =
      final_components_[rng->WeightedIndex(weights)];
  const Sketch& sk = layers_[length_].at(Key(comp.node, comp.q));
  return Decode(DrawStored(sk, rng));
}

Path FprasPathCounter::Decode(const SampleWord& word) const {
  const Multigraph& g = nfa_.view().topology();
  Path p;
  p.nodes.push_back(static_cast<NodeId>(word.enc[0]));
  for (size_t i = 1; i < word.enc.size(); ++i) {
    EdgeId e = word.enc[i] >> 1;
    bool backward = (word.enc[i] & 1) != 0;
    p.edges.push_back(e);
    p.nodes.push_back(backward ? g.EdgeSource(e) : g.EdgeTarget(e));
  }
  return p;
}

size_t FprasPathCounter::num_sketches() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.size();
  return total;
}

double ApproxCount(const PathNfa& nfa, size_t length,
                   const PathQueryOptions& opts,
                   const FprasOptions& fopts) {
  return FprasPathCounter(nfa, length, opts, fopts).Estimate();
}

}  // namespace kgq
