#ifndef KGQ_PATHALG_EXACT_H_
#define KGQ_PATHALG_EXACT_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pathalg/options.h"
#include "rpq/path.h"
#include "rpq/path_nfa.h"
#include "util/result.h"
#include "util/rng.h"

namespace kgq {

/// Exact solver for the Count and Gen problems of Section 4.1, by
/// dynamic programming over *configurations* (node, ε-closed state set).
///
/// A path determines its configuration sequence uniquely (the automaton
/// nondeterminism is folded into the mask), so configuration counts are
/// counts of distinct paths — the determinization that makes counting
/// exact. The price is the state space: the number of distinct reachable
/// masks can grow exponentially with the automaton size, which is
/// precisely the intractability (SpanL-completeness) the FPRAS of
/// fpras.h sidesteps. Use this class as the ground-truth oracle and for
/// small-to-moderate instances; num_configs() reports the blowup.
///
/// Counts are doubles: exact up to 2^53, a faithful approximation beyond
/// (path-explosive workloads overflow uint64 almost immediately).
class ExactPathIndex {
 public:
  /// Builds the memo for paths of length up to `max_len`.
  ExactPathIndex(const PathNfa& nfa, size_t max_len,
                 const PathQueryOptions& opts = {});

  /// Count(L, r, k) — the number of distinct paths of length exactly
  /// `length` in ⟦r⟧ satisfying the options. length must be ≤ max_len.
  double Count(size_t length);

  /// Σ_{j ≤ max_len} Count(j): all answers up to the length bound.
  double CountUpTo(size_t length);

  /// Gen — draws a path of length exactly `length` uniformly at random
  /// among all such paths. Fails with NotFound if none exist.
  Result<Path> Sample(size_t length, Rng* rng);

  /// Draws uniformly among *all* conforming paths with |p| ≤ `length`
  /// (length picked ∝ Count(j), then Sample(j)). Fails with NotFound if
  /// the whole set is empty.
  Result<Path> SampleUpTo(size_t length, Rng* rng);

  /// Number of memoized (length, configuration) entries — the size of
  /// the determinized search space (E8's blowup diagnostic).
  size_t num_configs() const;

 private:
  struct Config {
    NodeId node;
    PathNfa::StateMask mask;
    bool operator==(const Config&) const = default;
  };
  struct ConfigHash {
    size_t operator()(const Config& c) const {
      uint64_t h = c.mask * 0x9E3779B97F4A7C15ull;
      h ^= (h >> 29);
      h += static_cast<uint64_t>(c.node) * 0xBF58476D1CE4E5B9ull;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  /// Number of accepted suffix paths of length `remaining` from `c`.
  double Suffixes(size_t remaining, const Config& c);

  bool StartAllowed(NodeId n) const;

  const PathNfa& nfa_;
  size_t max_len_;
  PathQueryOptions opts_;
  // memo_[j] maps a configuration to its number of accepted suffixes of
  // length exactly j.
  std::vector<std::unordered_map<Config, double, ConfigHash>> memo_;
};

/// Shortest accepted path lengths from a fixed start node to every node:
/// result[b] is the least k ≤ max_len such that some path of length k
/// from `start` to b conforms to the query (respecting opts.avoid), or
/// nullopt. BFS over configurations — the building block of bc_r.
std::vector<std::optional<size_t>> ShortestAcceptedLengths(
    const PathNfa& nfa, NodeId start, size_t max_len,
    const PathQueryOptions& opts = {});

}  // namespace kgq

#endif  // KGQ_PATHALG_EXACT_H_
