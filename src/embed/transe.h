#ifndef KGQ_EMBED_TRANSE_H_
#define KGQ_EMBED_TRANSE_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace kgq {

/// Training knobs for TransE (Bordes et al. 2013 — reference [19] of the
/// paper; Section 2.3 names embeddings as the low-level representation
/// powering knowledge-graph refinement and completion).
struct TransEOptions {
  size_t dimension = 32;
  size_t epochs = 200;
  double learning_rate = 0.02;
  double margin = 1.0;
  uint64_t seed = 0xE5BEDull;

  /// Samples per gradient step. 1 (the default) is classic in-place SGD
  /// — one triple at a time, the reference stream of updates. Larger
  /// values switch to deterministic mini-batch descent: each batch's
  /// gradients are computed against the vectors at batch start
  /// (accumulated with a fixed-shape ParallelReduce tree), then applied
  /// and normalized in ascending index order. For a fixed batch_size
  /// the trained model is bit-identical for every thread count — the
  /// negative-sampling rng stream is drawn sequentially before the
  /// parallel phase, so it never depends on the schedule. (batch_size 1
  /// and batch_size k are *different* algorithms and converge to
  /// different — similarly good — embeddings.)
  size_t batch_size = 1;

  /// Threads for the mini-batch gradient pass (unused at batch_size 1).
  ParallelOptions parallel;
};

/// Knowledge-graph embeddings à la TransE: each entity e gets a vector
/// v_e and each relation p a vector r_p, trained so that v_s + r_p ≈ v_o
/// for asserted triples and not for corrupted ones (margin ranking loss,
/// SGD, entity vectors L2-normalized).
///
/// The model exposes the standard link-prediction interface: Score a
/// candidate triple, rank tail candidates, and evaluate hits@k / MRR —
/// the "knowledge graph completion" loop of Section 2.3.
class TransEModel {
 public:
  /// Trains on every triple of `store`. Fails if the store is empty.
  static Result<TransEModel> Train(const TripleStore& store,
                                   const TransEOptions& opts);

  /// Plausibility of (s, p, o): −‖v_s + r_p − v_o‖₂ (higher = better).
  /// Unknown terms score −∞-ish (−1e18).
  double Score(std::string_view s, std::string_view p,
               std::string_view o) const;

  /// Rank (1-based) of `o` among all entities as tail of (s, p, ?) —
  /// the raw ranking protocol. Unknown terms rank last.
  size_t TailRank(std::string_view s, std::string_view p,
                  std::string_view o) const;

  /// Link-prediction metrics over a test set of (s, p, o) string triples.
  struct Metrics {
    double mrr = 0.0;       ///< Mean reciprocal tail rank.
    double hits_at_1 = 0.0;
    double hits_at_3 = 0.0;
    double hits_at_10 = 0.0;
  };
  Metrics Evaluate(
      const std::vector<std::array<std::string, 3>>& test) const;

  size_t num_entities() const { return entities_.size(); }
  size_t num_relations() const { return relations_.size(); }
  size_t dimension() const { return dim_; }

  /// The entity vector (for inspection / clustering experiments);
  /// empty when the entity is unknown.
  std::vector<double> EntityVector(std::string_view entity) const;

 private:
  TransEModel() = default;

  int EntityIndex(std::string_view s) const;
  int RelationIndex(std::string_view s) const;
  double ScoreIdx(size_t s, size_t p, size_t o) const;

  size_t dim_ = 0;
  std::vector<std::string> entities_;
  std::vector<std::string> relations_;
  std::unordered_map<std::string, size_t> entity_index_;
  std::unordered_map<std::string, size_t> relation_index_;
  std::vector<double> entity_vecs_;    // entities × dim.
  std::vector<double> relation_vecs_;  // relations × dim.
};

}  // namespace kgq

#endif  // KGQ_EMBED_TRANSE_H_
