#include "embed/transe.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/obs.h"

namespace kgq {
namespace {

void Normalize(double* vec, size_t dim) {
  double norm = 0.0;
  for (size_t i = 0; i < dim; ++i) norm += vec[i] * vec[i];
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (size_t i = 0; i < dim; ++i) vec[i] /= norm;
}

struct IdTriple {
  size_t s, p, o;
};

/// Mini-batch gradient accumulator: sparse per-entity / per-relation
/// gradient rows plus the batch's hinge loss. Ordered maps so the apply
/// phase walks indices in ascending order.
struct BatchGrad {
  std::map<size_t, std::vector<double>> ent;
  std::map<size_t, std::vector<double>> rel;
  double loss = 0.0;
};

std::vector<double>& GradRow(std::map<size_t, std::vector<double>>* m,
                             size_t key, size_t dim) {
  auto [it, inserted] = m->try_emplace(key);
  if (inserted) it->second.assign(dim, 0.0);
  return it->second;
}

/// a += b, merging the sparse rows (the ParallelReduce combine — called
/// in a fixed tree order, so the per-element sums are schedule-free).
BatchGrad CombineGrads(BatchGrad a, BatchGrad b) {
  for (auto& [key, row] : b.ent) {
    auto [it, inserted] = a.ent.try_emplace(key, std::move(row));
    if (!inserted) {
      for (size_t j = 0; j < it->second.size(); ++j) {
        it->second[j] += row[j];
      }
    }
  }
  for (auto& [key, row] : b.rel) {
    auto [it, inserted] = a.rel.try_emplace(key, std::move(row));
    if (!inserted) {
      for (size_t j = 0; j < it->second.size(); ++j) {
        it->second[j] += row[j];
      }
    }
  }
  a.loss += b.loss;
  return a;
}

/// Samples per ParallelReduce chunk of the batch gradient pass. Fixed —
/// chunk boundaries must depend only on the batch size.
constexpr size_t kBatchGrain = 16;

}  // namespace

Result<TransEModel> TransEModel::Train(const TripleStore& store,
                                       const TransEOptions& opts) {
  const std::vector<Triple>& triples = store.AllTriples();
  if (triples.empty()) {
    return Status::InvalidArgument("cannot train TransE on an empty store");
  }

  TransEModel model;
  model.dim_ = opts.dimension;

  // Index entities (subjects/objects) and relations (predicates).
  auto entity_id = [&](ConstId term) {
    const std::string& text = store.dict().Lookup(term);
    auto [it, inserted] =
        model.entity_index_.emplace(text, model.entities_.size());
    if (inserted) model.entities_.push_back(text);
    return it->second;
  };
  auto relation_id = [&](ConstId term) {
    const std::string& text = store.dict().Lookup(term);
    auto [it, inserted] =
        model.relation_index_.emplace(text, model.relations_.size());
    if (inserted) model.relations_.push_back(text);
    return it->second;
  };

  std::vector<IdTriple> data;
  data.reserve(triples.size());
  for (const Triple& t : triples) {
    data.push_back({entity_id(t.s), relation_id(t.p), entity_id(t.o)});
  }

  size_t ne = model.entities_.size();
  size_t nr = model.relations_.size();
  size_t d = model.dim_;
  Rng rng(opts.seed);
  model.entity_vecs_.resize(ne * d);
  model.relation_vecs_.resize(nr * d);
  double scale = 6.0 / std::sqrt(static_cast<double>(d));
  for (double& x : model.entity_vecs_) {
    x = (rng.NextDouble() * 2.0 - 1.0) * scale;
  }
  for (double& x : model.relation_vecs_) {
    x = (rng.NextDouble() * 2.0 - 1.0) * scale;
  }
  for (size_t e = 0; e < ne; ++e) Normalize(&model.entity_vecs_[e * d], d);
  for (size_t r = 0; r < nr; ++r) {
    Normalize(&model.relation_vecs_[r * d], d);
  }

  // Margin ranking loss with uniform negative sampling. Two training
  // regimes share the shuffle and the negative-sampling rng stream:
  //
  //  * batch_size 1 — classic in-place SGD, one triple at a time (the
  //    reference stream of updates; kept verbatim).
  //  * batch_size k — deterministic mini-batch: negatives for the whole
  //    batch are drawn sequentially first (so the rng stream never
  //    depends on the schedule), gradients are accumulated against the
  //    batch-start vectors with a fixed-shape ParallelReduce, then
  //    applied and normalized in ascending index order. Bit-identical
  //    for every thread count.
  KGQ_SPAN("transe.train");
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const double lr = opts.learning_rate;
  for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    KGQ_SPAN("transe.epoch");
    double epoch_loss = 0.0;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Below(i)]);
    }
    if (opts.batch_size <= 1) {
      for (size_t idx : order) {
        const IdTriple& pos = data[idx];
        // Corrupt head or tail.
        IdTriple neg = pos;
        if (rng.Bernoulli(0.5)) {
          neg.s = rng.Below(ne);
        } else {
          neg.o = rng.Below(ne);
        }

        double* vs = &model.entity_vecs_[pos.s * d];
        double* vo = &model.entity_vecs_[pos.o * d];
        double* vr = &model.relation_vecs_[pos.p * d];
        double* ns = &model.entity_vecs_[neg.s * d];
        double* no = &model.entity_vecs_[neg.o * d];

        double pos_dist = 0.0, neg_dist = 0.0;
        for (size_t j = 0; j < d; ++j) {
          double dp = vs[j] + vr[j] - vo[j];
          double dn = ns[j] + vr[j] - no[j];
          pos_dist += dp * dp;
          neg_dist += dn * dn;
        }
        // Hinge on squared L2 (standard practical variant).
        if (pos_dist + opts.margin <= neg_dist) continue;
        if (KGQ_OBS_ON()) {
          epoch_loss += pos_dist + opts.margin - neg_dist;
        }
        for (size_t j = 0; j < d; ++j) {
          double dp = vs[j] + vr[j] - vo[j];
          double dn = ns[j] + vr[j] - no[j];
          // ∂/∂θ (pos_dist - neg_dist): positive triple pulled together,
          // negative pushed apart.
          vs[j] -= lr * 2.0 * dp;
          vo[j] += lr * 2.0 * dp;
          vr[j] -= lr * 2.0 * (dp - dn);
          ns[j] += lr * 2.0 * dn;
          no[j] -= lr * 2.0 * dn;
        }
        Normalize(vs, d);
        Normalize(vo, d);
        Normalize(ns, d);
        Normalize(no, d);
      }
    } else {
      std::vector<IdTriple> negs(opts.batch_size);
      for (size_t base = 0; base < order.size(); base += opts.batch_size) {
        size_t batch = std::min(opts.batch_size, order.size() - base);
        // Negative sampling consumes the main rng stream sequentially,
        // in sample order — thread-schedule-invariant by construction.
        for (size_t i = 0; i < batch; ++i) {
          IdTriple neg = data[order[base + i]];
          if (rng.Bernoulli(0.5)) {
            neg.s = rng.Below(ne);
          } else {
            neg.o = rng.Below(ne);
          }
          negs[i] = neg;
        }
        BatchGrad grads = ParallelReduce(
            0, batch, kBatchGrain, BatchGrad{},
            [&](size_t lo, size_t hi) {
              BatchGrad part;
              for (size_t i = lo; i < hi; ++i) {
                const IdTriple& pos = data[order[base + i]];
                const IdTriple& neg = negs[i];
                const double* vs = &model.entity_vecs_[pos.s * d];
                const double* vo = &model.entity_vecs_[pos.o * d];
                const double* vr = &model.relation_vecs_[pos.p * d];
                const double* nsv = &model.entity_vecs_[neg.s * d];
                const double* nov = &model.entity_vecs_[neg.o * d];
                double pos_dist = 0.0, neg_dist = 0.0;
                for (size_t j = 0; j < d; ++j) {
                  double dp = vs[j] + vr[j] - vo[j];
                  double dn = nsv[j] + vr[j] - nov[j];
                  pos_dist += dp * dp;
                  neg_dist += dn * dn;
                }
                if (pos_dist + opts.margin <= neg_dist) continue;
                part.loss += pos_dist + opts.margin - neg_dist;
                std::vector<double>& gs = GradRow(&part.ent, pos.s, d);
                std::vector<double>& go = GradRow(&part.ent, pos.o, d);
                std::vector<double>& gr = GradRow(&part.rel, pos.p, d);
                std::vector<double>& gns = GradRow(&part.ent, neg.s, d);
                std::vector<double>& gno = GradRow(&part.ent, neg.o, d);
                for (size_t j = 0; j < d; ++j) {
                  double dp = vs[j] + vr[j] - vo[j];
                  double dn = nsv[j] + vr[j] - nov[j];
                  gs[j] += 2.0 * dp;
                  go[j] -= 2.0 * dp;
                  gr[j] += 2.0 * (dp - dn);
                  gns[j] -= 2.0 * dn;
                  gno[j] += 2.0 * dn;
                }
              }
              return part;
            },
            CombineGrads, opts.parallel);
        // Apply + renormalize in ascending index order.
        for (const auto& [p, g] : grads.rel) {
          double* vr = &model.relation_vecs_[p * d];
          for (size_t j = 0; j < d; ++j) vr[j] -= lr * g[j];
        }
        for (const auto& [e, g] : grads.ent) {
          double* ve = &model.entity_vecs_[e * d];
          for (size_t j = 0; j < d; ++j) ve[j] -= lr * g[j];
          Normalize(ve, d);
        }
        if (KGQ_OBS_ON()) epoch_loss += grads.loss;
      }
    }
    KGQ_GAUGE_SET("embed.transe.epoch_loss_milli", epoch_loss * 1000.0);
  }
  return model;
}

int TransEModel::EntityIndex(std::string_view s) const {
  auto it = entity_index_.find(std::string(s));
  return it == entity_index_.end() ? -1 : static_cast<int>(it->second);
}

int TransEModel::RelationIndex(std::string_view s) const {
  auto it = relation_index_.find(std::string(s));
  return it == relation_index_.end() ? -1 : static_cast<int>(it->second);
}

double TransEModel::ScoreIdx(size_t s, size_t p, size_t o) const {
  const double* vs = &entity_vecs_[s * dim_];
  const double* vr = &relation_vecs_[p * dim_];
  const double* vo = &entity_vecs_[o * dim_];
  double dist = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    double diff = vs[j] + vr[j] - vo[j];
    dist += diff * diff;
  }
  return -std::sqrt(dist);
}

double TransEModel::Score(std::string_view s, std::string_view p,
                          std::string_view o) const {
  int si = EntityIndex(s);
  int pi = RelationIndex(p);
  int oi = EntityIndex(o);
  if (si < 0 || pi < 0 || oi < 0) return -1e18;
  return ScoreIdx(si, pi, oi);
}

size_t TransEModel::TailRank(std::string_view s, std::string_view p,
                             std::string_view o) const {
  int si = EntityIndex(s);
  int pi = RelationIndex(p);
  int oi = EntityIndex(o);
  if (si < 0 || pi < 0 || oi < 0) return entities_.size();
  double target = ScoreIdx(si, pi, oi);
  size_t rank = 1;
  for (size_t e = 0; e < entities_.size(); ++e) {
    if (static_cast<int>(e) == oi) continue;
    if (ScoreIdx(si, pi, e) > target) ++rank;
  }
  return rank;
}

TransEModel::Metrics TransEModel::Evaluate(
    const std::vector<std::array<std::string, 3>>& test) const {
  Metrics m;
  if (test.empty()) return m;
  for (const auto& t : test) {
    size_t rank = TailRank(t[0], t[1], t[2]);
    m.mrr += 1.0 / static_cast<double>(rank);
    if (rank <= 1) m.hits_at_1 += 1.0;
    if (rank <= 3) m.hits_at_3 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
  }
  double n = static_cast<double>(test.size());
  m.mrr /= n;
  m.hits_at_1 /= n;
  m.hits_at_3 /= n;
  m.hits_at_10 /= n;
  return m;
}

std::vector<double> TransEModel::EntityVector(
    std::string_view entity) const {
  int idx = EntityIndex(entity);
  if (idx < 0) return {};
  return std::vector<double>(entity_vecs_.begin() + idx * dim_,
                             entity_vecs_.begin() + (idx + 1) * dim_);
}

}  // namespace kgq
