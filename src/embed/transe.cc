#include "embed/transe.h"

#include <algorithm>
#include <cmath>

namespace kgq {
namespace {

void Normalize(double* vec, size_t dim) {
  double norm = 0.0;
  for (size_t i = 0; i < dim; ++i) norm += vec[i] * vec[i];
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (size_t i = 0; i < dim; ++i) vec[i] /= norm;
}

}  // namespace

Result<TransEModel> TransEModel::Train(const TripleStore& store,
                                       const TransEOptions& opts) {
  const std::vector<Triple>& triples = store.AllTriples();
  if (triples.empty()) {
    return Status::InvalidArgument("cannot train TransE on an empty store");
  }

  TransEModel model;
  model.dim_ = opts.dimension;

  // Index entities (subjects/objects) and relations (predicates).
  auto entity_id = [&](ConstId term) {
    const std::string& text = store.dict().Lookup(term);
    auto [it, inserted] =
        model.entity_index_.emplace(text, model.entities_.size());
    if (inserted) model.entities_.push_back(text);
    return it->second;
  };
  auto relation_id = [&](ConstId term) {
    const std::string& text = store.dict().Lookup(term);
    auto [it, inserted] =
        model.relation_index_.emplace(text, model.relations_.size());
    if (inserted) model.relations_.push_back(text);
    return it->second;
  };

  struct IdTriple {
    size_t s, p, o;
  };
  std::vector<IdTriple> data;
  data.reserve(triples.size());
  for (const Triple& t : triples) {
    data.push_back({entity_id(t.s), relation_id(t.p), entity_id(t.o)});
  }

  size_t ne = model.entities_.size();
  size_t nr = model.relations_.size();
  size_t d = model.dim_;
  Rng rng(opts.seed);
  model.entity_vecs_.resize(ne * d);
  model.relation_vecs_.resize(nr * d);
  double scale = 6.0 / std::sqrt(static_cast<double>(d));
  for (double& x : model.entity_vecs_) {
    x = (rng.NextDouble() * 2.0 - 1.0) * scale;
  }
  for (double& x : model.relation_vecs_) {
    x = (rng.NextDouble() * 2.0 - 1.0) * scale;
  }
  for (size_t e = 0; e < ne; ++e) Normalize(&model.entity_vecs_[e * d], d);
  for (size_t r = 0; r < nr; ++r) {
    Normalize(&model.relation_vecs_[r * d], d);
  }

  // SGD over margin ranking loss with uniform negative sampling.
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Below(i)]);
    }
    for (size_t idx : order) {
      const IdTriple& pos = data[idx];
      // Corrupt head or tail.
      IdTriple neg = pos;
      if (rng.Bernoulli(0.5)) {
        neg.s = rng.Below(ne);
      } else {
        neg.o = rng.Below(ne);
      }

      double* vs = &model.entity_vecs_[pos.s * d];
      double* vo = &model.entity_vecs_[pos.o * d];
      double* vr = &model.relation_vecs_[pos.p * d];
      double* ns = &model.entity_vecs_[neg.s * d];
      double* no = &model.entity_vecs_[neg.o * d];

      double pos_dist = 0.0, neg_dist = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double dp = vs[j] + vr[j] - vo[j];
        double dn = ns[j] + vr[j] - no[j];
        pos_dist += dp * dp;
        neg_dist += dn * dn;
      }
      // Hinge on squared L2 (standard practical variant).
      if (pos_dist + opts.margin <= neg_dist) continue;
      double lr = opts.learning_rate;
      for (size_t j = 0; j < d; ++j) {
        double dp = vs[j] + vr[j] - vo[j];
        double dn = ns[j] + vr[j] - no[j];
        // ∂/∂θ (pos_dist - neg_dist): positive triple pulled together,
        // negative pushed apart.
        vs[j] -= lr * 2.0 * dp;
        vo[j] += lr * 2.0 * dp;
        vr[j] -= lr * 2.0 * (dp - dn);
        ns[j] += lr * 2.0 * dn;
        no[j] -= lr * 2.0 * dn;
      }
      Normalize(vs, d);
      Normalize(vo, d);
      Normalize(ns, d);
      Normalize(no, d);
    }
  }
  return model;
}

int TransEModel::EntityIndex(std::string_view s) const {
  auto it = entity_index_.find(std::string(s));
  return it == entity_index_.end() ? -1 : static_cast<int>(it->second);
}

int TransEModel::RelationIndex(std::string_view s) const {
  auto it = relation_index_.find(std::string(s));
  return it == relation_index_.end() ? -1 : static_cast<int>(it->second);
}

double TransEModel::ScoreIdx(size_t s, size_t p, size_t o) const {
  const double* vs = &entity_vecs_[s * dim_];
  const double* vr = &relation_vecs_[p * dim_];
  const double* vo = &entity_vecs_[o * dim_];
  double dist = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    double diff = vs[j] + vr[j] - vo[j];
    dist += diff * diff;
  }
  return -std::sqrt(dist);
}

double TransEModel::Score(std::string_view s, std::string_view p,
                          std::string_view o) const {
  int si = EntityIndex(s);
  int pi = RelationIndex(p);
  int oi = EntityIndex(o);
  if (si < 0 || pi < 0 || oi < 0) return -1e18;
  return ScoreIdx(si, pi, oi);
}

size_t TransEModel::TailRank(std::string_view s, std::string_view p,
                             std::string_view o) const {
  int si = EntityIndex(s);
  int pi = RelationIndex(p);
  int oi = EntityIndex(o);
  if (si < 0 || pi < 0 || oi < 0) return entities_.size();
  double target = ScoreIdx(si, pi, oi);
  size_t rank = 1;
  for (size_t e = 0; e < entities_.size(); ++e) {
    if (static_cast<int>(e) == oi) continue;
    if (ScoreIdx(si, pi, e) > target) ++rank;
  }
  return rank;
}

TransEModel::Metrics TransEModel::Evaluate(
    const std::vector<std::array<std::string, 3>>& test) const {
  Metrics m;
  if (test.empty()) return m;
  for (const auto& t : test) {
    size_t rank = TailRank(t[0], t[1], t[2]);
    m.mrr += 1.0 / static_cast<double>(rank);
    if (rank <= 1) m.hits_at_1 += 1.0;
    if (rank <= 3) m.hits_at_3 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
  }
  double n = static_cast<double>(test.size());
  m.mrr /= n;
  m.hits_at_1 /= n;
  m.hits_at_3 /= n;
  m.hits_at_10 /= n;
  return m;
}

std::vector<double> TransEModel::EntityVector(
    std::string_view entity) const {
  int idx = EntityIndex(entity);
  if (idx < 0) return {};
  return std::vector<double>(entity_vecs_.begin() + idx * dim_,
                             entity_vecs_.begin() + (idx + 1) * dim_);
}

}  // namespace kgq
