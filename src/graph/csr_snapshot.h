#ifndef KGQ_GRAPH_CSR_SNAPSHOT_H_
#define KGQ_GRAPH_CSR_SNAPSHOT_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/labeled_graph.h"
#include "graph/multigraph.h"
#include "graph/property_graph.h"
#include "graph/vector_graph.h"

namespace kgq {

/// Dense label identifier local to one CsrSnapshot: the distinct edge
/// labels of the source graph re-interned into [0, num_labels) in first
/// appearance (edge-id) order.
using LabelId = uint32_t;

/// Sentinel: "no such label in this snapshot".
inline constexpr LabelId kNoLabel = 0xFFFFFFFFu;

/// An immutable, cache-friendly view of a graph's adjacency — the
/// traversal substrate of the hot kernels.
///
/// The mutable models (Multigraph and the labeled/property/vector
/// graphs on top of it) store one heap-allocated edge-id vector per
/// node; every traversal chases two pointers per step. A snapshot packs
/// the same information into four contiguous arrays:
///
///   * out view: entries sorted by (source, edge id) + node offsets,
///   * in view:  entries sorted by (target, edge id) + node offsets,
///   * a label-partitioned copy of each, sorted by (node, label,
///     edge id), so all edges with one label at one node form a single
///     contiguous range (`OutForLabel` / `InForLabel`) — the scan shape
///     of a product-automaton step over a fixed label.
///
/// Each entry carries the neighbor and the edge's dense LabelId, so a
/// traversal touches exactly one sequential stream.
///
/// Ordering contract: `Out(n)` and `In(n)` enumerate edges in ascending
/// edge id — exactly the insertion order of `Multigraph::OutEdges` /
/// `InEdges`. Kernels that branch between the list-based reference and
/// a snapshot therefore see the *same step sequence* either way, which
/// is what makes CSR-backed results bit-identical (including the
/// rng-stream-sensitive FPRAS); `tests/test_csr_equivalence.cc`
/// enforces this.
///
/// A snapshot does not own or observe its source graph afterwards: it
/// copies everything it needs (including label spellings), so the
/// source may mutate or die. Conversely a snapshot attached to a kernel
/// must outlive that kernel.
class CsrSnapshot {
 public:
  /// One adjacency slot: the crossed edge, the node on the other side
  /// (target for out-entries, source for in-entries) and the edge's
  /// dense label.
  struct Entry {
    EdgeId edge;
    NodeId neighbor;
    LabelId label;
    bool operator==(const Entry&) const = default;
  };

  /// A contiguous run of entries (iterable, indexable).
  struct Span {
    const Entry* data = nullptr;
    size_t count = 0;
    const Entry* begin() const { return data; }
    const Entry* end() const { return data + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    const Entry& operator[](size_t i) const { return data[i]; }
  };

  CsrSnapshot() = default;

  /// Snapshot of a labeled graph: edge labels become the label
  /// partitions.
  static CsrSnapshot FromGraph(const LabeledGraph& g);

  /// Snapshot of a property graph (labels of the underlying labeled
  /// graph; properties are not part of the adjacency substrate).
  static CsrSnapshot FromGraph(const PropertyGraph& g);

  /// Snapshot of a vector-labeled graph: feature row 0 plays the label
  /// role, consistently with VectorGraphView::EdgeLabelIs.
  static CsrSnapshot FromGraph(const VectorGraph& g);

  /// Snapshot of a bare topology: every edge gets the single pseudo
  /// label "" (one partition per node — label scans degenerate to full
  /// scans).
  static CsrSnapshot FromTopology(const Multigraph& g);

  /// Snapshot of a topology with caller-supplied edge label spellings —
  /// the factory for graph views that are not backed by one of the
  /// concrete models (e.g. RdfGraphView, whose edges are labeled by
  /// predicate). `label_of(e)` must be valid for every edge of `g`.
  static CsrSnapshot FromLabeledEdges(
      const Multigraph& g,
      const std::function<std::string(EdgeId)>& label_of);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return sources_.size(); }
  size_t num_labels() const { return label_names_.size(); }

  bool HasNode(NodeId n) const { return n < num_nodes_; }
  bool HasEdge(EdgeId e) const { return e < sources_.size(); }

  /// ρ(e) — endpoints of edge e.
  NodeId EdgeSource(EdgeId e) const { return sources_[e]; }
  NodeId EdgeTarget(EdgeId e) const { return targets_[e]; }
  /// Dense label of edge e.
  LabelId EdgeLabel(EdgeId e) const { return edge_labels_[e]; }

  /// Spelling of a dense label id.
  const std::string& LabelName(LabelId l) const { return label_names_[l]; }

  /// Number of edges carrying label l (tallied at build time) — the nnz
  /// of one label's SpMM aggregation, used by the benches to size work.
  /// Ids outside the snapshot's label space (including the kAtomDead /
  /// kAtomFiltered sentinels and kNoLabel) count 0, so cost rules can
  /// probe any id without first checking num_labels.
  size_t CountForLabel(LabelId l) const {
    return l < label_counts_.size() ? label_counts_[l] : 0;
  }

  /// Number of edges carrying label l — the planner's per-label
  /// cardinality statistic (alias of CountForLabel under the name the
  /// estimator speaks). Out-of-range ids count 0.
  size_t LabelFrequency(LabelId l) const { return CountForLabel(l); }

  /// Number of edges whose label spells `name` (0 when no edge carries
  /// it) — the string-level entry the cardinality estimator uses, so
  /// planner code never pokes at raw id arrays.
  size_t LabelFrequency(std::string_view name) const;

  /// Dense id of a label spelling, or nullopt if no edge carries it.
  std::optional<LabelId> FindLabel(std::string_view name) const;

  /// Out-entries of n in ascending edge id (== Multigraph insertion
  /// order); entry.neighbor is the edge target.
  Span Out(NodeId n) const {
    return {out_entries_.data() + out_offsets_[n],
            out_offsets_[n + 1] - out_offsets_[n]};
  }
  /// In-entries of n in ascending edge id; entry.neighbor is the edge
  /// source.
  Span In(NodeId n) const {
    return {in_entries_.data() + in_offsets_[n],
            in_offsets_[n + 1] - in_offsets_[n]};
  }

  /// Out-entries of n with label l: one contiguous range of the
  /// label-partitioned view, ascending edge id within the range.
  Span OutForLabel(NodeId n, LabelId l) const {
    return ForLabel(out_label_entries_, out_offsets_, n, l);
  }
  /// In-entries of n with label l.
  Span InForLabel(NodeId n, LabelId l) const {
    return ForLabel(in_label_entries_, in_offsets_, n, l);
  }

  /// The full label-partitioned adjacency of n, sorted by (label, edge
  /// id) — the concatenation of its per-label partitions.
  Span OutPartitioned(NodeId n) const {
    return {out_label_entries_.data() + out_offsets_[n],
            out_offsets_[n + 1] - out_offsets_[n]};
  }
  Span InPartitioned(NodeId n) const {
    return {in_label_entries_.data() + in_offsets_[n],
            in_offsets_[n + 1] - in_offsets_[n]};
  }

  size_t OutDegree(NodeId n) const {
    return out_offsets_[n + 1] - out_offsets_[n];
  }
  size_t InDegree(NodeId n) const {
    return in_offsets_[n + 1] - in_offsets_[n];
  }

  /// True iff this snapshot describes exactly the topology of `g`
  /// (same node count, edge count and per-edge endpoints) — the cheap
  /// compatibility check kernels run before trusting a snapshot.
  bool MatchesTopology(const Multigraph& g) const;

  /// One edge as (source, target, label spelling).
  struct EdgeRecord {
    NodeId from;
    NodeId to;
    std::string label;
    bool operator==(const EdgeRecord&) const = default;
  };

  /// Round-trips the snapshot back to its edge list in edge-id order
  /// (test/debug surface).
  std::vector<EdgeRecord> ToEdgeList() const;

  /// Incremental rebuild: the snapshot of `prev`'s edge set minus
  /// `deleted` plus `inserted`, over `num_nodes` nodes — bit-identical
  /// to a from-scratch FromLabeledEdges build of the same logical edge
  /// set, at delta-merge cost (no string interning, no intermediate
  /// graph; one linear merge plus the counting-sort passes).
  ///
  /// Preconditions (the DeltaStore publish invariants):
  ///   * prev's edge ids enumerate its edges in canonical
  ///     (from, to, label) order — true of every snapshot built from a
  ///     canonically ordered edge stream, which publishes maintain;
  ///   * `inserted` and `deleted` are canonically sorted and duplicate
  ///     free; every deleted edge is present in prev and no inserted
  ///     edge is (net-delta semantics);
  ///   * num_nodes >= prev.num_nodes().
  ///
  /// Label ids are re-derived in first-appearance order over the merged
  /// stream; labels whose last edge was deleted drop out — exactly what
  /// a cold rebuild would intern.
  static CsrSnapshot ApplyCanonicalDelta(const CsrSnapshot& prev,
                                         size_t num_nodes,
                                         const std::vector<EdgeRecord>& inserted,
                                         const std::vector<EdgeRecord>& deleted);

  /// Structural bit-identity: every array equal, including label
  /// interning order and the partitioned views. The differential gates
  /// compare incremental publishes against cold rebuilds with this.
  bool operator==(const CsrSnapshot&) const = default;

 private:
  /// Shared builder: `edge_label_const[e]` is the source-graph ConstId
  /// of e's label and `spell` maps one to its string.
  template <typename SpellFn>
  static CsrSnapshot Build(const Multigraph& g,
                           const std::vector<ConstId>& edge_label_const,
                           SpellFn&& spell);

  /// Derives the adjacency views (offsets, entry arrays, label
  /// partitions) from the already-filled edge arrays (num_nodes_,
  /// sources_, targets_, edge_labels_). Shared by Build and
  /// ApplyCanonicalDelta so both produce byte-identical layouts.
  void BuildViews();

  /// Delta-aware view build for canonically ordered edge arrays: the
  /// out view is the stream itself, offsets come from prev's degrees
  /// adjusted by the delta, the in spans and label partitions of nodes
  /// no delta edge touches are copied from `prev` with edge/label ids
  /// remapped — only touched nodes pay a merge or span sort.
  /// `prev_new_id[e]` is prev edge e's id in this snapshot (the max
  /// EdgeId sentinel for deleted edges); `ins_new_id[i]` is inserted[i]'s
  /// id; `label_remap[l]` is prev dense label l's new id or kNoLabel if
  /// its last edge was deleted. Byte-identical to BuildViews(); falls
  /// back to it when the label re-map is not order-preserving (a novel
  /// label interned before a surviving one).
  void BuildViewsFromDelta(const CsrSnapshot& prev,
                           const std::vector<EdgeId>& prev_new_id,
                           const std::vector<LabelId>& label_remap,
                           const std::vector<EdgeRecord>& inserted,
                           const std::vector<EdgeId>& ins_new_id,
                           const std::vector<EdgeRecord>& deleted);

  Span ForLabel(const std::vector<Entry>& entries,
                const std::vector<size_t>& offsets, NodeId n,
                LabelId l) const;

  size_t num_nodes_ = 0;
  std::vector<NodeId> sources_;
  std::vector<NodeId> targets_;
  std::vector<LabelId> edge_labels_;
  std::vector<std::string> label_names_;
  std::vector<size_t> label_counts_;  // edges per label, by LabelId.

  // The two views share their offset arrays between the edge-id-ordered
  // and the label-partitioned copies (same per-node sizes).
  std::vector<size_t> out_offsets_;  // num_nodes + 1
  std::vector<size_t> in_offsets_;   // num_nodes + 1
  std::vector<Entry> out_entries_;        // by (source, edge)
  std::vector<Entry> in_entries_;         // by (target, edge)
  std::vector<Entry> out_label_entries_;  // by (source, label, edge)
  std::vector<Entry> in_label_entries_;   // by (target, label, edge)
};

}  // namespace kgq

#endif  // KGQ_GRAPH_CSR_SNAPSHOT_H_
