#ifndef KGQ_GRAPH_TRAVERSAL_H_
#define KGQ_GRAPH_TRAVERSAL_H_

#include "graph/csr_snapshot.h"
#include "graph/multigraph.h"

namespace kgq {

/// The common traversal interface of the analytics kernels: one object
/// that answers "edges out of / into n, in insertion order" from either
/// the list-based Multigraph adjacency (the reference implementation)
/// or an attached CsrSnapshot (the fast path).
///
/// Both backends enumerate edges in ascending edge id, so a kernel's
/// visit order — and therefore every floating-point accumulation order —
/// is identical whichever backend serves it; switching backends can
/// change timing but never a bit of the result.
///
/// The branch is taken once per adjacency scan (not per edge) and both
/// bodies are inlined, so the wrapper costs nothing measurable against
/// the memory traffic it orchestrates.
class Traversal {
 public:
  /// List-based reference over `g`; if `snapshot` is non-null and
  /// matches g's topology, scans use its contiguous arrays instead.
  /// A mismatched snapshot is ignored (the kernel silently falls back
  /// to the reference adjacency rather than traversing a different
  /// graph). Both referents must outlive the Traversal.
  explicit Traversal(const Multigraph& g,
                     const CsrSnapshot* snapshot = nullptr)
      : g_(g),
        csr_(snapshot != nullptr && snapshot->MatchesTopology(g) ? snapshot
                                                                 : nullptr) {}

  bool using_csr() const { return csr_ != nullptr; }
  const Multigraph& graph() const { return g_; }

  size_t num_nodes() const { return g_.num_nodes(); }
  size_t num_edges() const { return g_.num_edges(); }

  size_t OutDegree(NodeId n) const {
    return csr_ ? csr_->OutDegree(n) : g_.OutDegree(n);
  }
  size_t InDegree(NodeId n) const {
    return csr_ ? csr_->InDegree(n) : g_.InDegree(n);
  }

  /// Calls fn(edge, target) for every edge leaving n, ascending edge id.
  template <typename Fn>
  void ForEachOut(NodeId n, Fn&& fn) const {
    if (csr_ != nullptr) {
      for (const CsrSnapshot::Entry& a : csr_->Out(n)) fn(a.edge, a.neighbor);
    } else {
      for (EdgeId e : g_.OutEdges(n)) fn(e, g_.EdgeTarget(e));
    }
  }

  /// Calls fn(edge, source) for every edge entering n, ascending edge id.
  template <typename Fn>
  void ForEachIn(NodeId n, Fn&& fn) const {
    if (csr_ != nullptr) {
      for (const CsrSnapshot::Entry& a : csr_->In(n)) fn(a.edge, a.neighbor);
    } else {
      for (EdgeId e : g_.InEdges(n)) fn(e, g_.EdgeSource(e));
    }
  }

 private:
  const Multigraph& g_;
  const CsrSnapshot* csr_;
};

}  // namespace kgq

#endif  // KGQ_GRAPH_TRAVERSAL_H_
