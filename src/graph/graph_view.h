#ifndef KGQ_GRAPH_GRAPH_VIEW_H_
#define KGQ_GRAPH_GRAPH_VIEW_H_

#include <string_view>

#include "graph/labeled_graph.h"
#include "graph/multigraph.h"
#include "graph/property_graph.h"
#include "graph/vector_graph.h"

namespace kgq {

/// Model-independent read interface consumed by the query machinery.
///
/// The paper defines regular expressions once and instantiates their
/// semantics over labeled graphs, property graphs and vector-labeled
/// graphs; GraphView is the code counterpart. Each predicate answers one
/// atomic test from Section 4:
///   - NodeLabelIs / EdgeLabelIs       — the ℓ atoms,
///   - NodePropertyIs / EdgePropertyIs — the (p = v) atoms,
///   - NodeFeatureIs / EdgeFeatureIs   — the (f_i = v) atoms.
/// Atoms that do not exist in a model are uniformly false there (e.g.
/// property atoms over a plain labeled graph), mirroring the paper's
/// per-model test grammars.
class GraphView {
 public:
  virtual ~GraphView() = default;

  /// The underlying multigraph (N, E, ρ).
  virtual const Multigraph& topology() const = 0;

  virtual bool NodeLabelIs(NodeId n, std::string_view label) const = 0;
  virtual bool EdgeLabelIs(EdgeId e, std::string_view label) const = 0;

  virtual bool NodePropertyIs(NodeId n, std::string_view name,
                              std::string_view value) const;
  virtual bool EdgePropertyIs(EdgeId e, std::string_view name,
                              std::string_view value) const;

  virtual bool NodeFeatureIs(NodeId n, size_t feature,
                             std::string_view value) const;
  virtual bool EdgeFeatureIs(EdgeId e, size_t feature,
                             std::string_view value) const;

  size_t num_nodes() const { return topology().num_nodes(); }
  size_t num_edges() const { return topology().num_edges(); }
};

/// View over a labeled graph: label atoms only.
class LabeledGraphView final : public GraphView {
 public:
  /// The graph must outlive the view.
  explicit LabeledGraphView(const LabeledGraph& graph) : graph_(graph) {}

  const Multigraph& topology() const override { return graph_.topology(); }
  bool NodeLabelIs(NodeId n, std::string_view label) const override;
  bool EdgeLabelIs(EdgeId e, std::string_view label) const override;

  const LabeledGraph& graph() const { return graph_; }

 private:
  const LabeledGraph& graph_;
};

/// View over a property graph: label and property atoms.
class PropertyGraphView final : public GraphView {
 public:
  /// The graph must outlive the view.
  explicit PropertyGraphView(const PropertyGraph& graph) : graph_(graph) {}

  const Multigraph& topology() const override {
    return graph_.labeled().topology();
  }
  bool NodeLabelIs(NodeId n, std::string_view label) const override;
  bool EdgeLabelIs(EdgeId e, std::string_view label) const override;
  bool NodePropertyIs(NodeId n, std::string_view name,
                      std::string_view value) const override;
  bool EdgePropertyIs(EdgeId e, std::string_view name,
                      std::string_view value) const override;

  const PropertyGraph& graph() const { return graph_; }

 private:
  const PropertyGraph& graph_;
};

/// View over a vector-labeled graph: feature atoms. As a convenience —
/// and consistently with the Figure 2(b)→(c) conversion, which stores the
/// label in feature row 0 — label atoms are answered by feature row 0.
class VectorGraphView final : public GraphView {
 public:
  /// The graph must outlive the view.
  explicit VectorGraphView(const VectorGraph& graph) : graph_(graph) {}

  const Multigraph& topology() const override { return graph_.topology(); }
  bool NodeLabelIs(NodeId n, std::string_view label) const override;
  bool EdgeLabelIs(EdgeId e, std::string_view label) const override;
  bool NodeFeatureIs(NodeId n, size_t feature,
                     std::string_view value) const override;
  bool EdgeFeatureIs(EdgeId e, size_t feature,
                     std::string_view value) const override;

  const VectorGraph& graph() const { return graph_; }

 private:
  const VectorGraph& graph_;
};

}  // namespace kgq

#endif  // KGQ_GRAPH_GRAPH_VIEW_H_
