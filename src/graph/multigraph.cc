#include "graph/multigraph.h"

#include <string>

namespace kgq {

Multigraph::Multigraph(size_t num_nodes)
    : out_edges_(num_nodes), in_edges_(num_nodes) {}

NodeId Multigraph::AddNode() {
  NodeId id = static_cast<NodeId>(num_nodes());
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

NodeId Multigraph::AddNodes(size_t count) {
  NodeId first = static_cast<NodeId>(num_nodes());
  out_edges_.resize(out_edges_.size() + count);
  in_edges_.resize(in_edges_.size() + count);
  return first;
}

Result<EdgeId> Multigraph::AddEdge(NodeId from, NodeId to) {
  if (!HasNode(from) || !HasNode(to)) {
    return Status::InvalidArgument(
        "AddEdge: endpoint out of range (from=" + std::to_string(from) +
        ", to=" + std::to_string(to) +
        ", nodes=" + std::to_string(num_nodes()) + ")");
  }
  EdgeId id = static_cast<EdgeId>(num_edges());
  sources_.push_back(from);
  targets_.push_back(to);
  out_edges_[from].push_back(id);
  in_edges_[to].push_back(id);
  return id;
}

}  // namespace kgq
