#include "graph/graph_view.h"

namespace kgq {
namespace {

/// True if `id` is interned in `dict` as exactly the string `s`.
bool IdMatches(const Interner& dict, ConstId id, std::string_view s) {
  if (id == kNullConst) return false;
  std::optional<ConstId> want = dict.Find(s);
  return want.has_value() && *want == id;
}

}  // namespace

bool GraphView::NodePropertyIs(NodeId, std::string_view,
                               std::string_view) const {
  return false;
}
bool GraphView::EdgePropertyIs(EdgeId, std::string_view,
                               std::string_view) const {
  return false;
}
bool GraphView::NodeFeatureIs(NodeId, size_t, std::string_view) const {
  return false;
}
bool GraphView::EdgeFeatureIs(EdgeId, size_t, std::string_view) const {
  return false;
}

bool LabeledGraphView::NodeLabelIs(NodeId n, std::string_view label) const {
  return IdMatches(graph_.dict(), graph_.NodeLabel(n), label);
}
bool LabeledGraphView::EdgeLabelIs(EdgeId e, std::string_view label) const {
  return IdMatches(graph_.dict(), graph_.EdgeLabel(e), label);
}

bool PropertyGraphView::NodeLabelIs(NodeId n, std::string_view label) const {
  return IdMatches(graph_.dict(), graph_.NodeLabel(n), label);
}
bool PropertyGraphView::EdgeLabelIs(EdgeId e, std::string_view label) const {
  return IdMatches(graph_.dict(), graph_.EdgeLabel(e), label);
}
bool PropertyGraphView::NodePropertyIs(NodeId n, std::string_view name,
                                       std::string_view value) const {
  std::optional<ConstId> name_id = graph_.dict().Find(name);
  if (!name_id.has_value()) return false;
  std::optional<ConstId> actual = graph_.NodeProperty(n, *name_id);
  return actual.has_value() && IdMatches(graph_.dict(), *actual, value);
}
bool PropertyGraphView::EdgePropertyIs(EdgeId e, std::string_view name,
                                       std::string_view value) const {
  std::optional<ConstId> name_id = graph_.dict().Find(name);
  if (!name_id.has_value()) return false;
  std::optional<ConstId> actual = graph_.EdgeProperty(e, *name_id);
  return actual.has_value() && IdMatches(graph_.dict(), *actual, value);
}

bool VectorGraphView::NodeLabelIs(NodeId n, std::string_view label) const {
  return NodeFeatureIs(n, 0, label);
}
bool VectorGraphView::EdgeLabelIs(EdgeId e, std::string_view label) const {
  return EdgeFeatureIs(e, 0, label);
}
bool VectorGraphView::NodeFeatureIs(NodeId n, size_t feature,
                                    std::string_view value) const {
  if (feature >= graph_.dimension()) return false;
  return IdMatches(graph_.dict(), graph_.NodeFeature(n, feature), value);
}
bool VectorGraphView::EdgeFeatureIs(EdgeId e, size_t feature,
                                    std::string_view value) const {
  if (feature >= graph_.dimension()) return false;
  return IdMatches(graph_.dict(), graph_.EdgeFeature(e, feature), value);
}

}  // namespace kgq
