#include "graph/transform.h"

#include <cassert>

namespace kgq {

Subgraph InducedSubgraph(const LabeledGraph& graph, const Bitset& nodes) {
  assert(nodes.size() == graph.num_nodes());
  Subgraph out;
  std::vector<NodeId> new_id(graph.num_nodes(), kNoNode);
  nodes.ForEach([&](size_t n) {
    new_id[n] = out.graph.AddNode(graph.NodeLabelString(n));
    out.node_origin.push_back(static_cast<NodeId>(n));
  });
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    NodeId s = new_id[graph.EdgeSource(e)];
    NodeId t = new_id[graph.EdgeTarget(e)];
    if (s == kNoNode || t == kNoNode) continue;
    auto added = out.graph.AddEdge(s, t, graph.EdgeLabelString(e));
    assert(added.ok());
    (void)added;
    out.edge_origin.push_back(e);
  }
  return out;
}

LabeledGraph ReverseGraph(const LabeledGraph& graph) {
  LabeledGraph out;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    out.AddNode(graph.NodeLabelString(n));
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto added = out.AddEdge(graph.EdgeTarget(e), graph.EdgeSource(e),
                             graph.EdgeLabelString(e));
    assert(added.ok());
    (void)added;
  }
  return out;
}

Subgraph FilterEdges(const LabeledGraph& graph,
                     const std::function<bool(EdgeId)>& keep) {
  Subgraph out;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    out.graph.AddNode(graph.NodeLabelString(n));
    out.node_origin.push_back(n);
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!keep(e)) continue;
    auto added = out.graph.AddEdge(graph.EdgeSource(e), graph.EdgeTarget(e),
                                   graph.EdgeLabelString(e));
    assert(added.ok());
    (void)added;
    out.edge_origin.push_back(e);
  }
  return out;
}

LabeledGraph DisjointUnion(const LabeledGraph& a, const LabeledGraph& b) {
  LabeledGraph out;
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    out.AddNode(a.NodeLabelString(n));
  }
  for (NodeId n = 0; n < b.num_nodes(); ++n) {
    out.AddNode(b.NodeLabelString(n));
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    auto added =
        out.AddEdge(a.EdgeSource(e), a.EdgeTarget(e), a.EdgeLabelString(e));
    assert(added.ok());
    (void)added;
  }
  NodeId shift = static_cast<NodeId>(a.num_nodes());
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    auto added = out.AddEdge(b.EdgeSource(e) + shift,
                             b.EdgeTarget(e) + shift, b.EdgeLabelString(e));
    assert(added.ok());
    (void)added;
  }
  return out;
}

}  // namespace kgq
