#include "graph/labeled_graph.h"

namespace kgq {

NodeId LabeledGraph::AddNode(std::string_view label) {
  NodeId id = graph_.AddNode();
  node_labels_.push_back(dict_.Intern(label));
  return id;
}

Result<EdgeId> LabeledGraph::AddEdge(NodeId from, NodeId to,
                                     std::string_view label) {
  KGQ_ASSIGN_OR_RETURN(EdgeId id, graph_.AddEdge(from, to));
  edge_labels_.push_back(dict_.Intern(label));
  return id;
}

}  // namespace kgq
