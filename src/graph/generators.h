#ifndef KGQ_GRAPH_GENERATORS_H_
#define KGQ_GRAPH_GENERATORS_H_

#include <string>
#include <vector>

#include "graph/labeled_graph.h"
#include "util/rng.h"

namespace kgq {

/// Workload generators: the paper evaluates nothing on proprietary data,
/// but its algorithmic claims need graphs with controlled shape. These
/// generators produce the classic families used in the benchmark harness
/// (E1-E8 of DESIGN.md).

/// G(n, m) Erdős–Rényi digraph: m edges drawn uniformly (with possible
/// parallels/self-loops — we are in a multigraph world). Node and edge
/// labels are drawn uniformly from the given alphabets (which must be
/// non-empty).
LabeledGraph ErdosRenyi(size_t n, size_t m,
                        const std::vector<std::string>& node_labels,
                        const std::vector<std::string>& edge_labels,
                        Rng* rng);

/// Barabási–Albert preferential attachment: nodes arrive one at a time
/// and attach `attach` out-edges to existing nodes with probability
/// proportional to degree + 1. Produces the heavy-tailed degree
/// distributions under which centrality experiments are interesting.
LabeledGraph BarabasiAlbert(size_t n, size_t attach,
                            const std::vector<std::string>& node_labels,
                            const std::vector<std::string>& edge_labels,
                            Rng* rng);

/// `layers`+1 columns of `width` nodes, every node fully connected to the
/// next column. The number of source→sink paths is width^(layers-1) —
/// the path-explosion workload behind the paper's "counting beyond a
/// yottabyte" remark (E8). All nodes share label `node_label`; all edges
/// share label `edge_label`.
LabeledGraph LayeredDag(size_t layers, size_t width,
                        const std::string& node_label,
                        const std::string& edge_label);

/// w×h directed grid (right and down edges); diameter and shortest-path
/// behaviour are known in closed form, which makes it the canonical
/// analytics sanity workload.
LabeledGraph Grid(size_t width, size_t height, const std::string& node_label,
                  const std::string& edge_label);

/// Random digraph with a prescribed out-degree sequence: node i emits
/// exactly out_degrees[i] edges to uniform random targets (in-degrees
/// come out multinomial). Self-loops and parallel edges are kept — we
/// live in multigraphs. Node/edge labels drawn from the alphabets.
LabeledGraph FixedOutDegreeGraph(const std::vector<size_t>& out_degrees,
                                const std::vector<std::string>& node_labels,
                                const std::vector<std::string>& edge_labels,
                                Rng* rng);

/// Directed cycle of n nodes (single label each); used by the WL and
/// enumeration tests because its path sets are computable by hand.
LabeledGraph Cycle(size_t n, const std::string& node_label,
                   const std::string& edge_label);

}  // namespace kgq

#endif  // KGQ_GRAPH_GENERATORS_H_
