#include "graph/property_graph.h"

#include <algorithm>

namespace kgq {

void PropertySet::Set(ConstId name, ConstId value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, ConstId key) { return entry.first < key; });
  if (it != entries_.end() && it->first == name) {
    it->second = value;
  } else {
    entries_.insert(it, {name, value});
  }
}

std::optional<ConstId> PropertySet::Get(ConstId name) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, ConstId key) { return entry.first < key; });
  if (it != entries_.end() && it->first == name) return it->second;
  return std::nullopt;
}

NodeId PropertyGraph::AddNode(std::string_view label) {
  NodeId id = base_.AddNode(label);
  node_props_.emplace_back();
  return id;
}

Result<EdgeId> PropertyGraph::AddEdge(NodeId from, NodeId to,
                                      std::string_view label) {
  KGQ_ASSIGN_OR_RETURN(EdgeId id, base_.AddEdge(from, to, label));
  edge_props_.emplace_back();
  return id;
}

void PropertyGraph::SetNodeProperty(NodeId n, std::string_view name,
                                    std::string_view value) {
  node_props_[n].Set(dict().Intern(name), dict().Intern(value));
}

void PropertyGraph::SetEdgeProperty(EdgeId e, std::string_view name,
                                    std::string_view value) {
  edge_props_[e].Set(dict().Intern(name), dict().Intern(value));
}

std::optional<std::string> PropertyGraph::NodePropertyString(
    NodeId n, std::string_view name) const {
  std::optional<ConstId> name_id = dict().Find(name);
  if (!name_id.has_value()) return std::nullopt;
  std::optional<ConstId> value = NodeProperty(n, *name_id);
  if (!value.has_value()) return std::nullopt;
  return dict().Lookup(*value);
}

std::optional<std::string> PropertyGraph::EdgePropertyString(
    EdgeId e, std::string_view name) const {
  std::optional<ConstId> name_id = dict().Find(name);
  if (!name_id.has_value()) return std::nullopt;
  std::optional<ConstId> value = EdgeProperty(e, *name_id);
  if (!value.has_value()) return std::nullopt;
  return dict().Lookup(*value);
}

}  // namespace kgq
