#ifndef KGQ_GRAPH_PROPERTY_GRAPH_H_
#define KGQ_GRAPH_PROPERTY_GRAPH_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/labeled_graph.h"

namespace kgq {

/// A set of (property name → value) pairs attached to one node or edge.
/// Stored as a name-sorted vector: objects typically carry very few
/// properties, so sorted-vector lookup beats hashing in both space and
/// time (and gives deterministic iteration order).
class PropertySet {
 public:
  /// Sets `name` to `value`, overwriting an existing binding.
  void Set(ConstId name, ConstId value);

  /// Value of `name`, or nullopt (σ is a partial function).
  std::optional<ConstId> Get(ConstId name) const;

  /// All bindings, sorted by property name id.
  const std::vector<std::pair<ConstId, ConstId>>& entries() const {
    return entries_;
  }

  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<ConstId, ConstId>> entries_;
};

/// A property graph P = (N, E, ρ, λ, σ): a labeled graph whose nodes and
/// edges additionally carry values for finitely many properties
/// (Section 3, Figure 2(b)). σ is the partial function realized by the
/// per-object PropertySet.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  /// Adds a node labeled `label`.
  NodeId AddNode(std::string_view label);

  /// Adds an edge labeled `label`.
  Result<EdgeId> AddEdge(NodeId from, NodeId to, std::string_view label);

  /// σ(n, name) := value.
  void SetNodeProperty(NodeId n, std::string_view name,
                       std::string_view value);
  /// σ(e, name) := value.
  void SetEdgeProperty(EdgeId e, std::string_view name,
                       std::string_view value);

  /// σ(n, name), or nullopt when undefined.
  std::optional<ConstId> NodeProperty(NodeId n, ConstId name) const {
    return node_props_[n].Get(name);
  }
  std::optional<ConstId> EdgeProperty(EdgeId e, ConstId name) const {
    return edge_props_[e].Get(name);
  }

  /// String-keyed lookup convenience (returns nullopt when either the
  /// name has never been interned or the property is unset).
  std::optional<std::string> NodePropertyString(NodeId n,
                                                std::string_view name) const;
  std::optional<std::string> EdgePropertyString(EdgeId e,
                                                std::string_view name) const;

  /// All properties of one node / edge.
  const PropertySet& NodeProperties(NodeId n) const { return node_props_[n]; }
  const PropertySet& EdgeProperties(EdgeId e) const { return edge_props_[e]; }

  // Labeled-graph facade.
  size_t num_nodes() const { return base_.num_nodes(); }
  size_t num_edges() const { return base_.num_edges(); }
  bool HasNode(NodeId n) const { return base_.HasNode(n); }
  bool HasEdge(EdgeId e) const { return base_.HasEdge(e); }
  NodeId EdgeSource(EdgeId e) const { return base_.EdgeSource(e); }
  NodeId EdgeTarget(EdgeId e) const { return base_.EdgeTarget(e); }
  const std::vector<EdgeId>& OutEdges(NodeId n) const {
    return base_.OutEdges(n);
  }
  const std::vector<EdgeId>& InEdges(NodeId n) const {
    return base_.InEdges(n);
  }
  ConstId NodeLabel(NodeId n) const { return base_.NodeLabel(n); }
  ConstId EdgeLabel(EdgeId e) const { return base_.EdgeLabel(e); }
  const std::string& NodeLabelString(NodeId n) const {
    return base_.NodeLabelString(n);
  }
  const std::string& EdgeLabelString(EdgeId e) const {
    return base_.EdgeLabelString(e);
  }

  /// The labeled graph (N, E, ρ, λ) underlying this property graph.
  const LabeledGraph& labeled() const { return base_; }

  Interner& dict() { return base_.dict(); }
  const Interner& dict() const { return base_.dict(); }

 private:
  LabeledGraph base_;
  std::vector<PropertySet> node_props_;
  std::vector<PropertySet> edge_props_;
};

}  // namespace kgq

#endif  // KGQ_GRAPH_PROPERTY_GRAPH_H_
