#include "graph/vector_graph.h"

#include <cassert>

namespace kgq {

VectorGraph::VectorGraph(size_t dimension) : dimension_(dimension) {
  assert(dimension >= 1);
}

Result<NodeId> VectorGraph::AddNode(std::vector<ConstId> features) {
  if (features.size() != dimension_) {
    return Status::InvalidArgument(
        "AddNode: feature vector has size " +
        std::to_string(features.size()) + ", expected " +
        std::to_string(dimension_));
  }
  NodeId id = graph_.AddNode();
  node_features_.insert(node_features_.end(), features.begin(),
                        features.end());
  return id;
}

Result<NodeId> VectorGraph::AddNodeFromStrings(
    const std::vector<std::string_view>& features) {
  std::vector<ConstId> ids;
  ids.reserve(features.size());
  for (std::string_view f : features) {
    ids.push_back(f.empty() ? kNullConst : dict_.Intern(f));
  }
  return AddNode(std::move(ids));
}

Result<EdgeId> VectorGraph::AddEdge(NodeId from, NodeId to,
                                    std::vector<ConstId> features) {
  if (features.size() != dimension_) {
    return Status::InvalidArgument(
        "AddEdge: feature vector has size " +
        std::to_string(features.size()) + ", expected " +
        std::to_string(dimension_));
  }
  KGQ_ASSIGN_OR_RETURN(EdgeId id, graph_.AddEdge(from, to));
  edge_features_.insert(edge_features_.end(), features.begin(),
                        features.end());
  return id;
}

Result<EdgeId> VectorGraph::AddEdgeFromStrings(
    NodeId from, NodeId to, const std::vector<std::string_view>& features) {
  std::vector<ConstId> ids;
  ids.reserve(features.size());
  for (std::string_view f : features) {
    ids.push_back(f.empty() ? kNullConst : dict_.Intern(f));
  }
  return AddEdge(from, to, std::move(ids));
}

}  // namespace kgq
