#ifndef KGQ_GRAPH_CONVERSIONS_H_
#define KGQ_GRAPH_CONVERSIONS_H_

#include <string>
#include <vector>

#include "graph/labeled_graph.h"
#include "graph/property_graph.h"
#include "graph/vector_graph.h"

namespace kgq {

/// Names the feature rows of a VectorGraph produced by a conversion.
/// Row 0 is always "label" (the paper's f_1); further rows are property
/// names in deterministic (lexicographic) order.
struct VectorSchema {
  std::vector<std::string> feature_names;

  /// Index of `name` in feature_names, or -1.
  int IndexOf(const std::string& name) const;
};

/// Lifts a labeled graph to a property graph with no properties
/// (property graphs extend labeled graphs; Section 3).
PropertyGraph LabeledToProperty(const LabeledGraph& graph);

/// Forgets properties, keeping (N, E, ρ, λ).
LabeledGraph PropertyToLabeled(const PropertyGraph& graph);

/// Converts a labeled graph to the 1-dimensional vector-labeled graph
/// whose single feature is the label.
VectorGraph LabeledToVector(const LabeledGraph& graph);

/// Converts a property graph to a vector-labeled graph exactly as in
/// Figure 2(b)→(c): the first feature row holds the label, and each
/// property name used anywhere in the graph gets one row, with ⊥
/// (kNullConst) where an object has no value for it. The produced schema
/// reports which row is which.
VectorGraph PropertyToVector(const PropertyGraph& graph,
                             VectorSchema* schema);

/// Projects feature row `index` of a vector-labeled graph back into a
/// labeled graph (⊥ features become the label "⊥"). Fails if `index`
/// is out of range.
Result<LabeledGraph> VectorToLabeled(const VectorGraph& graph, size_t index);

}  // namespace kgq

#endif  // KGQ_GRAPH_CONVERSIONS_H_
