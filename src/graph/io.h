#ifndef KGQ_GRAPH_IO_H_
#define KGQ_GRAPH_IO_H_

#include <string>

#include "graph/property_graph.h"
#include "util/result.h"

namespace kgq {

/// Plain-text serialization of property graphs (the library's native
/// exchange format — line-oriented, diff-friendly, self-describing):
///
///   # kgq property graph v1
///   node 0 person name=Juan age=34
///   node 1 bus
///   edge 0 0 1 rides date="3/4/21"
///
/// Tokens with characters outside [A-Za-z0-9_./:-] are double-quoted
/// with \" and \\ escapes. Property *names* must already be plain
/// tokens (values are arbitrary). Node/edge ids must be dense and in
/// order (they are indexes). LoadPropertyGraph(SavePropertyGraph(g))
/// reproduces g exactly.
std::string SavePropertyGraph(const PropertyGraph& graph);

/// Parses the format above. Fails with ParseError on malformed input
/// and InvalidArgument on non-dense ids or dangling endpoints.
Result<PropertyGraph> LoadPropertyGraph(const std::string& text);

}  // namespace kgq

#endif  // KGQ_GRAPH_IO_H_
