#include "graph/generators.h"

#include <cassert>

namespace kgq {
namespace {

const std::string& Pick(const std::vector<std::string>& alphabet, Rng* rng) {
  assert(!alphabet.empty());
  return alphabet[rng->Below(alphabet.size())];
}

}  // namespace

LabeledGraph ErdosRenyi(size_t n, size_t m,
                        const std::vector<std::string>& node_labels,
                        const std::vector<std::string>& edge_labels,
                        Rng* rng) {
  LabeledGraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(Pick(node_labels, rng));
  for (size_t j = 0; j < m; ++j) {
    NodeId from = static_cast<NodeId>(rng->Below(n));
    NodeId to = static_cast<NodeId>(rng->Below(n));
    auto added = g.AddEdge(from, to, Pick(edge_labels, rng));
    assert(added.ok());
    (void)added;
  }
  return g;
}

LabeledGraph BarabasiAlbert(size_t n, size_t attach,
                            const std::vector<std::string>& node_labels,
                            const std::vector<std::string>& edge_labels,
                            Rng* rng) {
  LabeledGraph g;
  // Endpoint pool: every edge endpoint appears once, plus one entry per
  // node, so sampling from the pool is degree+1-proportional.
  std::vector<NodeId> pool;
  for (size_t i = 0; i < n; ++i) {
    NodeId v = g.AddNode(Pick(node_labels, rng));
    size_t links = std::min(attach, static_cast<size_t>(v));
    for (size_t j = 0; j < links; ++j) {
      NodeId target = pool[rng->Below(pool.size())];
      auto added = g.AddEdge(v, target, Pick(edge_labels, rng));
      assert(added.ok());
      (void)added;
      pool.push_back(target);
      pool.push_back(v);
    }
    pool.push_back(v);
  }
  return g;
}

LabeledGraph LayeredDag(size_t layers, size_t width,
                        const std::string& node_label,
                        const std::string& edge_label) {
  LabeledGraph g;
  for (size_t layer = 0; layer <= layers; ++layer) {
    for (size_t i = 0; i < width; ++i) g.AddNode(node_label);
  }
  for (size_t layer = 0; layer < layers; ++layer) {
    for (size_t i = 0; i < width; ++i) {
      NodeId from = static_cast<NodeId>(layer * width + i);
      for (size_t j = 0; j < width; ++j) {
        NodeId to = static_cast<NodeId>((layer + 1) * width + j);
        auto added = g.AddEdge(from, to, edge_label);
        assert(added.ok());
        (void)added;
      }
    }
  }
  return g;
}

LabeledGraph Grid(size_t width, size_t height, const std::string& node_label,
                  const std::string& edge_label) {
  LabeledGraph g;
  for (size_t i = 0; i < width * height; ++i) g.AddNode(node_label);
  auto at = [width](size_t x, size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        auto added = g.AddEdge(at(x, y), at(x + 1, y), edge_label);
        assert(added.ok());
        (void)added;
      }
      if (y + 1 < height) {
        auto added = g.AddEdge(at(x, y), at(x, y + 1), edge_label);
        assert(added.ok());
        (void)added;
      }
    }
  }
  return g;
}

LabeledGraph FixedOutDegreeGraph(const std::vector<size_t>& out_degrees,
                                 const std::vector<std::string>& node_labels,
                                 const std::vector<std::string>& edge_labels,
                                 Rng* rng) {
  LabeledGraph g;
  size_t n = out_degrees.size();
  for (size_t i = 0; i < n; ++i) g.AddNode(Pick(node_labels, rng));
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < out_degrees[i]; ++d) {
      NodeId to = static_cast<NodeId>(rng->Below(n));
      auto added = g.AddEdge(static_cast<NodeId>(i), to,
                             Pick(edge_labels, rng));
      assert(added.ok());
      (void)added;
    }
  }
  return g;
}

LabeledGraph Cycle(size_t n, const std::string& node_label,
                   const std::string& edge_label) {
  LabeledGraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(node_label);
  for (size_t i = 0; i < n; ++i) {
    auto added = g.AddEdge(static_cast<NodeId>(i),
                           static_cast<NodeId>((i + 1) % n), edge_label);
    assert(added.ok());
    (void)added;
  }
  return g;
}

}  // namespace kgq
