#include "graph/io.h"

#include <cctype>
#include <vector>

namespace kgq {
namespace {

bool PlainToken(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.' || c == '/' || c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string Quote(const std::string& s) {
  if (PlainToken(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Splits one line into tokens (quoted strings kept as single tokens).
Result<std::vector<std::string>> SplitLine(const std::string& line,
                                           size_t line_no) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '#') break;  // Comment.
    std::string token;
    if (c == '"') {
      ++i;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          token.push_back(line[i + 1]);
          i += 2;
        } else if (line[i] == '"') {
          closed = true;
          ++i;
          break;
        } else {
          token.push_back(line[i++]);
        }
      }
      if (!closed) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": unterminated string");
      }
      out.push_back(std::move(token));
      continue;
    }
    // Bare token, possibly name=value with a quoted value.
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '#') {
      if (line[i] == '"') {
        token.push_back('"');  // Marker consumed below by the caller.
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            token.push_back(line[i + 1]);
            i += 2;
          } else if (line[i] == '"') {
            ++i;
            break;
          } else {
            token.push_back(line[i++]);
          }
        }
        continue;
      }
      token.push_back(line[i++]);
    }
    out.push_back(std::move(token));
  }
  return out;
}

/// Splits a "name=value" token; the value may carry a leading '"' marker
/// from SplitLine (already unescaped).
Result<std::pair<std::string, std::string>> SplitProp(
    const std::string& token, size_t line_no) {
  size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": expected name=value, got '" + token + "'");
  }
  std::string name = token.substr(0, eq);
  std::string value = token.substr(eq + 1);
  if (!value.empty() && value[0] == '"') value = value.substr(1);
  return std::make_pair(std::move(name), std::move(value));
}

}  // namespace

std::string SavePropertyGraph(const PropertyGraph& graph) {
  std::string out = "# kgq property graph v1\n";
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    out += "node " + std::to_string(n) + " " +
           Quote(graph.NodeLabelString(n));
    for (const auto& [name, value] : graph.NodeProperties(n).entries()) {
      out += " " + Quote(graph.dict().Lookup(name)) + "=" +
             Quote(graph.dict().Lookup(value));
    }
    out += "\n";
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    out += "edge " + std::to_string(e) + " " +
           std::to_string(graph.EdgeSource(e)) + " " +
           std::to_string(graph.EdgeTarget(e)) + " " +
           Quote(graph.EdgeLabelString(e));
    for (const auto& [name, value] : graph.EdgeProperties(e).entries()) {
      out += " " + Quote(graph.dict().Lookup(name)) + "=" +
             Quote(graph.dict().Lookup(value));
    }
    out += "\n";
  }
  return out;
}

Result<PropertyGraph> LoadPropertyGraph(const std::string& text) {
  PropertyGraph out;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;

    KGQ_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                         SplitLine(line, line_no));
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];
    if (kind == "node") {
      if (tokens.size() < 3) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": node needs 'node <id> <label>'");
      }
      NodeId expected = static_cast<NodeId>(out.num_nodes());
      if (tokens[1] != std::to_string(expected)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": node ids must be dense "
            "and ordered (expected " + std::to_string(expected) + ")");
      }
      NodeId n = out.AddNode(tokens[2]);
      for (size_t i = 3; i < tokens.size(); ++i) {
        KGQ_ASSIGN_OR_RETURN(auto prop, SplitProp(tokens[i], line_no));
        out.SetNodeProperty(n, prop.first, prop.second);
      }
    } else if (kind == "edge") {
      if (tokens.size() < 5) {
        return Status::ParseError(
            "line " + std::to_string(line_no) +
            ": edge needs 'edge <id> <src> <tgt> <label>'");
      }
      EdgeId expected = static_cast<EdgeId>(out.num_edges());
      if (tokens[1] != std::to_string(expected)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": edge ids must be dense "
            "and ordered (expected " + std::to_string(expected) + ")");
      }
      char* endp = nullptr;
      NodeId src = static_cast<NodeId>(
          std::strtoul(tokens[2].c_str(), &endp, 10));
      if (endp == tokens[2].c_str() || *endp != '\0') {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad source id '" + tokens[2] + "'");
      }
      NodeId tgt = static_cast<NodeId>(
          std::strtoul(tokens[3].c_str(), &endp, 10));
      if (endp == tokens[3].c_str() || *endp != '\0') {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad target id '" + tokens[3] + "'");
      }
      KGQ_ASSIGN_OR_RETURN(EdgeId e, out.AddEdge(src, tgt, tokens[4]));
      for (size_t i = 5; i < tokens.size(); ++i) {
        KGQ_ASSIGN_OR_RETURN(auto prop, SplitProp(tokens[i], line_no));
        out.SetEdgeProperty(e, prop.first, prop.second);
      }
    } else {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": unknown record '" + kind + "'");
    }
  }
  return out;
}

}  // namespace kgq
