#ifndef KGQ_GRAPH_LABELED_GRAPH_H_
#define KGQ_GRAPH_LABELED_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/multigraph.h"
#include "util/interner.h"
#include "util/result.h"

namespace kgq {

/// A labeled graph L = (N, E, ρ, λ): a multigraph plus a total labeling
/// λ : (N ∪ E) → Const of both nodes and edges (Section 3, Figure 2(a)).
///
/// The graph owns its constant dictionary, so labels can be supplied and
/// read back as strings while all internal storage uses dense ConstId.
class LabeledGraph {
 public:
  LabeledGraph() = default;

  /// Adds a node labeled `label` and returns its id.
  NodeId AddNode(std::string_view label);

  /// Adds an edge labeled `label`; fails if an endpoint does not exist.
  Result<EdgeId> AddEdge(NodeId from, NodeId to, std::string_view label);

  size_t num_nodes() const { return graph_.num_nodes(); }
  size_t num_edges() const { return graph_.num_edges(); }
  bool HasNode(NodeId n) const { return graph_.HasNode(n); }
  bool HasEdge(EdgeId e) const { return graph_.HasEdge(e); }
  NodeId EdgeSource(EdgeId e) const { return graph_.EdgeSource(e); }
  NodeId EdgeTarget(EdgeId e) const { return graph_.EdgeTarget(e); }
  const std::vector<EdgeId>& OutEdges(NodeId n) const {
    return graph_.OutEdges(n);
  }
  const std::vector<EdgeId>& InEdges(NodeId n) const {
    return graph_.InEdges(n);
  }

  /// λ(n) for a node.
  ConstId NodeLabel(NodeId n) const { return node_labels_[n]; }
  /// λ(e) for an edge.
  ConstId EdgeLabel(EdgeId e) const { return edge_labels_[e]; }

  /// λ(n) as a string.
  const std::string& NodeLabelString(NodeId n) const {
    return dict_.Lookup(NodeLabel(n));
  }
  /// λ(e) as a string.
  const std::string& EdgeLabelString(EdgeId e) const {
    return dict_.Lookup(EdgeLabel(e));
  }

  /// The underlying multigraph (N, E, ρ).
  const Multigraph& topology() const { return graph_; }

  /// The constant dictionary of this graph.
  Interner& dict() { return dict_; }
  const Interner& dict() const { return dict_; }

 private:
  Multigraph graph_;
  Interner dict_;
  std::vector<ConstId> node_labels_;
  std::vector<ConstId> edge_labels_;
};

}  // namespace kgq

#endif  // KGQ_GRAPH_LABELED_GRAPH_H_
