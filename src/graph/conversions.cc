#include "graph/conversions.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace kgq {

int VectorSchema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < feature_names.size(); ++i) {
    if (feature_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

PropertyGraph LabeledToProperty(const LabeledGraph& graph) {
  PropertyGraph out;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    out.AddNode(graph.NodeLabelString(n));
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto added = out.AddEdge(graph.EdgeSource(e), graph.EdgeTarget(e),
                             graph.EdgeLabelString(e));
    assert(added.ok());
    (void)added;
  }
  return out;
}

LabeledGraph PropertyToLabeled(const PropertyGraph& graph) {
  LabeledGraph out;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    out.AddNode(graph.NodeLabelString(n));
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto added = out.AddEdge(graph.EdgeSource(e), graph.EdgeTarget(e),
                             graph.EdgeLabelString(e));
    assert(added.ok());
    (void)added;
  }
  return out;
}

VectorGraph LabeledToVector(const LabeledGraph& graph) {
  VectorGraph out(1);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    auto added = out.AddNodeFromStrings({graph.NodeLabelString(n)});
    assert(added.ok());
    (void)added;
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto added =
        out.AddEdgeFromStrings(graph.EdgeSource(e), graph.EdgeTarget(e),
                               {graph.EdgeLabelString(e)});
    assert(added.ok());
    (void)added;
  }
  return out;
}

VectorGraph PropertyToVector(const PropertyGraph& graph,
                             VectorSchema* schema) {
  // Collect every property name used anywhere, by string, for a
  // deterministic row order independent of interning order.
  std::set<std::string> names;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    for (const auto& [name, value] : graph.NodeProperties(n).entries()) {
      (void)value;
      names.insert(graph.dict().Lookup(name));
    }
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    for (const auto& [name, value] : graph.EdgeProperties(e).entries()) {
      (void)value;
      names.insert(graph.dict().Lookup(name));
    }
  }

  VectorSchema local_schema;
  local_schema.feature_names.push_back("label");
  for (const std::string& name : names) {
    local_schema.feature_names.push_back(name);
  }
  size_t d = local_schema.feature_names.size();

  VectorGraph out(d);
  auto features_of = [&](ConstId label, const PropertySet& props) {
    std::vector<ConstId> feats(d, kNullConst);
    feats[0] = out.dict().Intern(graph.dict().Lookup(label));
    for (size_t i = 1; i < d; ++i) {
      std::optional<ConstId> name_id =
          graph.dict().Find(local_schema.feature_names[i]);
      if (!name_id.has_value()) continue;
      std::optional<ConstId> value = props.Get(*name_id);
      if (value.has_value()) {
        feats[i] = out.dict().Intern(graph.dict().Lookup(*value));
      }
    }
    return feats;
  };

  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    auto added =
        out.AddNode(features_of(graph.NodeLabel(n), graph.NodeProperties(n)));
    assert(added.ok());
    (void)added;
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto added = out.AddEdge(graph.EdgeSource(e), graph.EdgeTarget(e),
                             features_of(graph.EdgeLabel(e),
                                         graph.EdgeProperties(e)));
    assert(added.ok());
    (void)added;
  }

  if (schema != nullptr) *schema = std::move(local_schema);
  return out;
}

Result<LabeledGraph> VectorToLabeled(const VectorGraph& graph, size_t index) {
  if (index >= graph.dimension()) {
    return Status::OutOfRange("VectorToLabeled: feature index " +
                              std::to_string(index) + " >= dimension " +
                              std::to_string(graph.dimension()));
  }
  LabeledGraph out;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    out.AddNode(graph.NodeFeatureString(n, index));
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    KGQ_RETURN_IF_ERROR(out.AddEdge(graph.EdgeSource(e), graph.EdgeTarget(e),
                                    graph.EdgeFeatureString(e, index))
                            .status());
  }
  return out;
}

}  // namespace kgq
