#include "graph/csr_snapshot.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_map>

namespace kgq {

template <typename SpellFn>
CsrSnapshot CsrSnapshot::Build(const Multigraph& g,
                               const std::vector<ConstId>& edge_label_const,
                               SpellFn&& spell) {
  CsrSnapshot snap;
  size_t n = g.num_nodes();
  size_t m = g.num_edges();
  snap.num_nodes_ = n;
  snap.sources_.resize(m);
  snap.targets_.resize(m);
  snap.edge_labels_.resize(m);

  // Re-intern the distinct label constants into dense LabelIds in first
  // appearance (edge-id) order.
  std::unordered_map<ConstId, LabelId> label_index;
  for (EdgeId e = 0; e < m; ++e) {
    snap.sources_[e] = g.EdgeSource(e);
    snap.targets_[e] = g.EdgeTarget(e);
    ConstId c = edge_label_const[e];
    auto [it, inserted] =
        label_index.emplace(c, static_cast<LabelId>(label_index.size()));
    if (inserted) {
      snap.label_names_.push_back(spell(c));
      snap.label_counts_.push_back(0);
    }
    snap.edge_labels_[e] = it->second;
    ++snap.label_counts_[it->second];
  }

  snap.BuildViews();
  return snap;
}

void CsrSnapshot::BuildViews() {
  const size_t n = num_nodes_;
  const size_t m = sources_.size();
  // Counting sort of the edges by source (out view) and by target (in
  // view). Edges are visited in ascending id, so entries within one
  // node keep ascending edge id — the Multigraph insertion order.
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    ++out_offsets_[sources_[e] + 1];
    ++in_offsets_[targets_[e] + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    out_offsets_[i] += out_offsets_[i - 1];
    in_offsets_[i] += in_offsets_[i - 1];
  }
  out_entries_.resize(m);
  in_entries_.resize(m);
  std::vector<size_t> out_cursor(out_offsets_.begin(),
                                 out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    LabelId l = edge_labels_[e];
    out_entries_[out_cursor[sources_[e]]++] = Entry{e, targets_[e], l};
    in_entries_[in_cursor[targets_[e]]++] = Entry{e, sources_[e], l};
  }

  // Label-partitioned copies: within each node span, stable-sort by
  // label — stability keeps ascending edge id inside every partition.
  out_label_entries_ = out_entries_;
  in_label_entries_ = in_entries_;
  auto by_label = [](const Entry& a, const Entry& b) {
    return a.label < b.label;
  };
  for (NodeId v = 0; v < n; ++v) {
    std::stable_sort(
        out_label_entries_.begin() + out_offsets_[v],
        out_label_entries_.begin() + out_offsets_[v + 1], by_label);
    std::stable_sort(in_label_entries_.begin() + in_offsets_[v],
                     in_label_entries_.begin() + in_offsets_[v + 1], by_label);
  }
}

CsrSnapshot CsrSnapshot::FromGraph(const LabeledGraph& g) {
  std::vector<ConstId> labels(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) labels[e] = g.EdgeLabel(e);
  return Build(g.topology(), labels,
               [&](ConstId c) { return g.dict().Lookup(c); });
}

CsrSnapshot CsrSnapshot::FromGraph(const PropertyGraph& g) {
  return FromGraph(g.labeled());
}

CsrSnapshot CsrSnapshot::FromGraph(const VectorGraph& g) {
  std::vector<ConstId> labels(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) labels[e] = g.EdgeFeature(e, 0);
  return Build(g.topology(), labels,
               [&](ConstId c) { return g.dict().Lookup(c); });
}

CsrSnapshot CsrSnapshot::FromTopology(const Multigraph& g) {
  std::vector<ConstId> labels(g.num_edges(), 0);
  return Build(g, labels, [](ConstId) { return std::string(); });
}

CsrSnapshot CsrSnapshot::FromLabeledEdges(
    const Multigraph& g,
    const std::function<std::string(EdgeId)>& label_of) {
  Interner dict;
  std::vector<ConstId> labels(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    labels[e] = dict.Intern(label_of(e));
  }
  return Build(g, labels, [&](ConstId c) { return dict.Lookup(c); });
}

CsrSnapshot CsrSnapshot::ApplyCanonicalDelta(
    const CsrSnapshot& prev, size_t num_nodes,
    const std::vector<EdgeRecord>& inserted,
    const std::vector<EdgeRecord>& deleted) {
  CsrSnapshot snap;
  snap.num_nodes_ = num_nodes;
  const size_t m_prev = prev.sources_.size();
  const size_t m = m_prev + inserted.size() - deleted.size();
  constexpr EdgeId kUnset = std::numeric_limits<EdgeId>::max();

  // Provisional label keys: prev labels keep their dense id; spellings
  // seen only in `inserted` get keys past prev's label space. Label
  // strings are hashed once per distinct delta spelling, never once per
  // edge.
  const LabelId prev_labels = static_cast<LabelId>(prev.label_names_.size());
  std::unordered_map<std::string_view, LabelId> key_of;
  key_of.reserve(prev.label_names_.size());
  for (LabelId l = 0; l < prev_labels; ++l) {
    key_of.emplace(prev.label_names_[l], l);
  }
  std::vector<const std::string*> novel_names;
  std::vector<LabelId> ins_keys(inserted.size());
  for (size_t i = 0; i < inserted.size(); ++i) {
    auto [it, fresh] = key_of.emplace(
        inserted[i].label,
        static_cast<LabelId>(prev_labels + novel_names.size()));
    if (fresh) novel_names.push_back(&inserted[i].label);
    ins_keys[i] = it->second;
  }
  const size_t num_keys = prev_labels + novel_names.size();

  // Three-way order between a prev edge (canonical by construction) and
  // a delta record. Endpoints decide almost always; the label string is
  // only consulted on an endpoint tie.
  auto cmp = [&](EdgeId e, const EdgeRecord& r) -> int {
    if (prev.sources_[e] != r.from) return prev.sources_[e] < r.from ? -1 : 1;
    if (prev.targets_[e] != r.to) return prev.targets_[e] < r.to ? -1 : 1;
    int c = prev.label_names_[prev.edge_labels_[e]].compare(r.label);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  };

  // Bookkeeping walk over the conceptual merge — no arrays are written
  // yet. Produces: maximal runs of surviving prev edges (memcpy'd
  // below), each edge's id in the new canonical stream, and the first
  // merged-stream position of every label key (the cold build's
  // first-appearance interning order, recovered without per-edge label
  // work).
  struct Segment {
    EdgeId prev_begin;
    EdgeId prev_end;
    EdgeId new_begin;
  };
  std::vector<Segment> segments;
  std::vector<EdgeId> ins_new_id(inserted.size());
  std::vector<EdgeId> prev_new_id(m_prev);
  std::vector<EdgeId> first_pos(num_keys, kUnset);
  EdgeId out_pos = 0;
  bool in_seg = false;
  EdgeId seg_prev = 0;
  EdgeId seg_new = 0;
  auto close_seg = [&](EdgeId end_prev) {
    if (in_seg) {
      segments.push_back(Segment{seg_prev, end_prev, seg_new});
      in_seg = false;
    }
  };
  size_t ii = 0, di = 0;
  for (EdgeId e = 0; e < m_prev; ++e) {
    while (ii < inserted.size() && cmp(e, inserted[ii]) > 0) {
      close_seg(e);
      ins_new_id[ii] = out_pos;
      if (first_pos[ins_keys[ii]] == kUnset) first_pos[ins_keys[ii]] = out_pos;
      ++out_pos;
      ++ii;
    }
    if (di < deleted.size() && cmp(e, deleted[di]) == 0) {
      close_seg(e);
      prev_new_id[e] = kUnset;  // gone from the new epoch
      ++di;
      continue;
    }
    if (!in_seg) {
      in_seg = true;
      seg_prev = e;
      seg_new = out_pos;
    }
    prev_new_id[e] = out_pos;
    const LabelId pl = prev.edge_labels_[e];
    if (first_pos[pl] == kUnset) first_pos[pl] = out_pos;
    ++out_pos;
  }
  close_seg(static_cast<EdgeId>(m_prev));
  for (; ii < inserted.size(); ++ii) {
    ins_new_id[ii] = out_pos;
    if (first_pos[ins_keys[ii]] == kUnset) first_pos[ins_keys[ii]] = out_pos;
    ++out_pos;
  }

  // Dense label table in first-appearance order over the merged stream,
  // with counts by arithmetic instead of per-edge tallies. Keys whose
  // last edge was deleted drop out (first_pos unset).
  std::vector<size_t> key_ins(num_keys, 0);
  std::vector<size_t> key_del(num_keys, 0);
  for (size_t i = 0; i < inserted.size(); ++i) ++key_ins[ins_keys[i]];
  for (const EdgeRecord& r : deleted) ++key_del[key_of.find(r.label)->second];
  std::vector<LabelId> order;
  order.reserve(num_keys);
  for (LabelId k = 0; k < num_keys; ++k) {
    if (first_pos[k] != kUnset) order.push_back(k);
  }
  std::sort(order.begin(), order.end(),
            [&](LabelId a, LabelId b) { return first_pos[a] < first_pos[b]; });
  std::vector<LabelId> key2new(num_keys, kNoLabel);
  snap.label_names_.reserve(order.size());
  snap.label_counts_.reserve(order.size());
  for (LabelId nl = 0; nl < order.size(); ++nl) {
    const LabelId k = order[nl];
    key2new[k] = nl;
    snap.label_names_.push_back(k < prev_labels
                                    ? prev.label_names_[k]
                                    : *novel_names[k - prev_labels]);
    snap.label_counts_.push_back(
        (k < prev_labels ? prev.label_counts_[k] : 0) + key_ins[k] -
        key_del[k]);
  }
  bool identity_remap = true;
  for (LabelId l = 0; identity_remap && l < prev_labels; ++l) {
    identity_remap = key2new[l] == l || key2new[l] == kNoLabel;
  }

  // Flat canonical arrays: surviving runs are block copies; delta
  // records are point writes at their precomputed positions. Labels
  // copy verbatim when the re-map is the identity (the steady state)
  // and remap per edge otherwise.
  snap.sources_.resize(m);
  snap.targets_.resize(m);
  snap.edge_labels_.resize(m);
  for (const Segment& s : segments) {
    const size_t len = s.prev_end - s.prev_begin;
    std::memcpy(snap.sources_.data() + s.new_begin,
                prev.sources_.data() + s.prev_begin, len * sizeof(NodeId));
    std::memcpy(snap.targets_.data() + s.new_begin,
                prev.targets_.data() + s.prev_begin, len * sizeof(NodeId));
    if (identity_remap) {
      std::memcpy(snap.edge_labels_.data() + s.new_begin,
                  prev.edge_labels_.data() + s.prev_begin,
                  len * sizeof(LabelId));
    } else {
      for (size_t i = 0; i < len; ++i) {
        snap.edge_labels_[s.new_begin + i] =
            key2new[prev.edge_labels_[s.prev_begin + i]];
      }
    }
  }
  for (size_t i = 0; i < inserted.size(); ++i) {
    snap.sources_[ins_new_id[i]] = inserted[i].from;
    snap.targets_[ins_new_id[i]] = inserted[i].to;
    snap.edge_labels_[ins_new_id[i]] = key2new[ins_keys[i]];
  }

  key2new.resize(prev_labels);  // the surviving-label re-map
  snap.BuildViewsFromDelta(prev, prev_new_id, key2new, inserted, ins_new_id,
                           deleted);
  return snap;
}

void CsrSnapshot::BuildViewsFromDelta(
    const CsrSnapshot& prev, const std::vector<EdgeId>& prev_new_id,
    const std::vector<LabelId>& label_remap,
    const std::vector<EdgeRecord>& inserted,
    const std::vector<EdgeId>& ins_new_id,
    const std::vector<EdgeRecord>& deleted) {
  // The untouched-partition copy below replays the previous label sort
  // order, which equals the new order only while the re-map is monotone
  // over surviving labels. A delta can break that (a novel label
  // interned before a surviving label's first appearance moved the
  // dense order); cold-build the views then.
  bool monotone = true;
  bool first = true;
  LabelId last = 0;
  for (LabelId nl : label_remap) {
    if (nl == kNoLabel) continue;  // label's last edge was deleted
    if (!first && nl < last) {
      monotone = false;
      break;
    }
    last = nl;
    first = false;
  }
  if (!monotone) {
    BuildViews();
    return;
  }
  bool identity_remap = true;
  for (LabelId l = 0; identity_remap && l < label_remap.size(); ++l) {
    identity_remap = label_remap[l] == l || label_remap[l] == kNoLabel;
  }

  const size_t n = num_nodes_;
  const size_t m = sources_.size();
  constexpr EdgeId kUnset = std::numeric_limits<EdgeId>::max();
  std::vector<char> out_touched(n, 0);
  std::vector<char> in_touched(n, 0);
  for (const EdgeRecord& r : inserted) {
    out_touched[r.from] = 1;
    in_touched[r.to] = 1;
  }
  for (const EdgeRecord& r : deleted) {
    out_touched[r.from] = 1;
    in_touched[r.to] = 1;
  }

  // Offsets by arithmetic: the previous per-node degrees adjusted by the
  // delta's degree changes — one O(n + |delta|) pass, no O(m) counting
  // scan. (The adjustments can be negative; size_t wrap-around adds are
  // exact because every running degree is nonnegative.)
  std::vector<int32_t> ddeg_out(n, 0);
  std::vector<int32_t> ddeg_in(n, 0);
  for (const EdgeRecord& r : inserted) {
    ++ddeg_out[r.from];
    ++ddeg_in[r.to];
  }
  for (const EdgeRecord& r : deleted) {
    --ddeg_out[r.from];
    --ddeg_in[r.to];
  }
  out_offsets_.resize(n + 1);
  in_offsets_.resize(n + 1);
  size_t oacc = 0, iacc = 0;
  for (NodeId v = 0; v < n; ++v) {
    out_offsets_[v] = oacc;
    in_offsets_[v] = iacc;
    if (v < prev.num_nodes_) {
      oacc += prev.out_offsets_[v + 1] - prev.out_offsets_[v];
      iacc += prev.in_offsets_[v + 1] - prev.in_offsets_[v];
    }
    oacc += static_cast<size_t>(static_cast<int64_t>(ddeg_out[v]));
    iacc += static_cast<size_t>(static_cast<int64_t>(ddeg_in[v]));
  }
  out_offsets_[n] = oacc;
  in_offsets_[n] = iacc;

  // Canonical (from, to, label) order groups the stream by source with
  // ascending edge ids, so the out view is the stream itself.
  out_entries_.resize(m);
  for (EdgeId e = 0; e < m; ++e) {
    out_entries_[e] = Entry{e, targets_[e], edge_labels_[e]};
  }

  // In view: a node no delta edge points at replays its previous span
  // with ids remapped (sequential copy, no scatter); a touched node
  // merges its surviving previous entries with the delta's inserts by
  // new edge id. Inserts are canonically sorted and new ids ascend in
  // record order, so grouping by target preserves ascending id within
  // each group.
  in_entries_.resize(m);
  std::vector<std::pair<NodeId, size_t>> ins_by_target(inserted.size());
  for (size_t i = 0; i < inserted.size(); ++i) {
    ins_by_target[i] = {inserted[i].to, i};
  }
  std::stable_sort(
      ins_by_target.begin(), ins_by_target.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  // Untouched in-nodes are processed by maximal runs: consecutive
  // untouched spans are contiguous in both the previous and the new
  // entry arrays, so a whole run remaps in one flat loop — the average
  // node span is a handful of entries, far too short to loop per node.
  auto remap_run = [&](const Entry* p, Entry* q, size_t len) {
    if (identity_remap) {
      for (size_t i = 0; i < len; ++i) {
        q[i] = Entry{prev_new_id[p[i].edge], p[i].neighbor, p[i].label};
      }
    } else {
      for (size_t i = 0; i < len; ++i) {
        q[i] = Entry{prev_new_id[p[i].edge], p[i].neighbor,
                     label_remap[p[i].label]};
      }
    }
  };
  size_t ins_lo = 0;
  for (NodeId v = 0; v < n;) {
    if (v < prev.num_nodes_ && !in_touched[v]) {
      const NodeId v0 = v;
      while (v < prev.num_nodes_ && !in_touched[v]) ++v;
      remap_run(prev.in_entries_.data() + prev.in_offsets_[v0],
                in_entries_.data() + in_offsets_[v0],
                prev.in_offsets_[v] - prev.in_offsets_[v0]);
      continue;
    }
    size_t dst = in_offsets_[v];
    const Entry* ps = nullptr;
    const Entry* pe = nullptr;
    if (v < prev.num_nodes_) {
      ps = prev.in_entries_.data() + prev.in_offsets_[v];
      pe = prev.in_entries_.data() + prev.in_offsets_[v + 1];
    }
    size_t ins_hi = ins_lo;
    while (ins_hi < ins_by_target.size() && ins_by_target[ins_hi].first == v) {
      ++ins_hi;
    }
    size_t ic = ins_lo;
    while (true) {
      while (ps != pe && prev_new_id[ps->edge] == kUnset) ++ps;  // deleted
      const bool has_prev = ps != pe;
      const bool has_ins = ic < ins_hi;
      if (!has_prev && !has_ins) break;
      const EdgeId ins_id =
          has_ins ? ins_new_id[ins_by_target[ic].second] : 0;
      if (has_prev && (!has_ins || prev_new_id[ps->edge] < ins_id)) {
        in_entries_[dst++] =
            Entry{prev_new_id[ps->edge], ps->neighbor, label_remap[ps->label]};
        ++ps;
      } else {
        in_entries_[dst++] = Entry{ins_id, sources_[ins_id],
                                   edge_labels_[ins_id]};
        ++ic;
      }
    }
    ins_lo = ins_hi;
    ++v;
  }

  // Label partitions: a node no delta edge touches keeps its previous
  // partition permutation exactly (surviving edge ids shift
  // monotonically, the label re-map is monotone, and stable_sort is
  // deterministic), so its span is a straight copy with ids remapped.
  // Only touched nodes — at most two per delta record — sort.
  out_label_entries_.resize(m);
  in_label_entries_.resize(m);
  // Stable in-place insertion sort by label: what stable_sort computes,
  // without its per-call temp-buffer allocation — touched spans are
  // node degrees, small by construction.
  auto sort_span = [](Entry* lo, Entry* hi) {
    for (Entry* it = lo + 1; it < hi; ++it) {
      Entry key = *it;
      Entry* j = it;
      while (j > lo && (j - 1)->label > key.label) {
        *j = *(j - 1);
        --j;
      }
      *j = key;
    }
  };
  // Out side, by maximal untouched runs. A node untouched on the out
  // side owns a contiguous canonical-id range that no delta record
  // splits, so prev_new_id is one constant shift over its whole span —
  // and consecutive untouched nodes share that shift. A run is one
  // block copy plus a constant add to the edge field (a straight memcpy
  // when the shift is zero and the label re-map is the identity).
  for (NodeId v = 0; v < n;) {
    if (v < prev.num_nodes_ && !out_touched[v]) {
      const NodeId v0 = v;
      while (v < prev.num_nodes_ && !out_touched[v]) ++v;
      const size_t src = prev.out_offsets_[v0];
      const size_t dst = out_offsets_[v0];
      const size_t len = prev.out_offsets_[v] - src;
      const EdgeId shift =
          static_cast<EdgeId>(dst) - static_cast<EdgeId>(src);  // mod 2^32
      if (shift == 0 && identity_remap) {
        std::memcpy(out_label_entries_.data() + dst,
                    prev.out_label_entries_.data() + src, len * sizeof(Entry));
      } else if (identity_remap) {
        for (size_t i = 0; i < len; ++i) {
          const Entry& p = prev.out_label_entries_[src + i];
          out_label_entries_[dst + i] =
              Entry{static_cast<EdgeId>(p.edge + shift), p.neighbor, p.label};
        }
      } else {
        for (size_t i = 0; i < len; ++i) {
          const Entry& p = prev.out_label_entries_[src + i];
          out_label_entries_[dst + i] = Entry{
              static_cast<EdgeId>(p.edge + shift), p.neighbor,
              label_remap[p.label]};
        }
      }
      continue;
    }
    const size_t dst = out_offsets_[v];
    const size_t len = out_offsets_[v + 1] - dst;
    std::copy(out_entries_.begin() + dst, out_entries_.begin() + dst + len,
              out_label_entries_.begin() + dst);
    sort_span(out_label_entries_.data() + dst,
              out_label_entries_.data() + dst + len);
    ++v;
  }

  // In side: a node's in-span ids are scattered across the stream, so
  // untouched spans remap per entry through prev_new_id — but still by
  // maximal runs (contiguous in both arrays), one flat loop per run.
  for (NodeId v = 0; v < n;) {
    if (v < prev.num_nodes_ && !in_touched[v]) {
      const NodeId v0 = v;
      while (v < prev.num_nodes_ && !in_touched[v]) ++v;
      remap_run(prev.in_label_entries_.data() + prev.in_offsets_[v0],
                in_label_entries_.data() + in_offsets_[v0],
                prev.in_offsets_[v] - prev.in_offsets_[v0]);
      continue;
    }
    const size_t idst = in_offsets_[v];
    const size_t ilen = in_offsets_[v + 1] - idst;
    std::copy(in_entries_.begin() + idst, in_entries_.begin() + idst + ilen,
              in_label_entries_.begin() + idst);
    sort_span(in_label_entries_.data() + idst,
              in_label_entries_.data() + idst + ilen);
    ++v;
  }
}

size_t CsrSnapshot::LabelFrequency(std::string_view name) const {
  std::optional<LabelId> l = FindLabel(name);
  return l.has_value() ? label_counts_[*l] : 0;
}

std::optional<LabelId> CsrSnapshot::FindLabel(std::string_view name) const {
  for (LabelId l = 0; l < label_names_.size(); ++l) {
    if (label_names_[l] == name) return l;
  }
  return std::nullopt;
}

CsrSnapshot::Span CsrSnapshot::ForLabel(const std::vector<Entry>& entries,
                                        const std::vector<size_t>& offsets,
                                        NodeId n, LabelId l) const {
  const Entry* lo = entries.data() + offsets[n];
  const Entry* hi = entries.data() + offsets[n + 1];
  auto [first, last] = std::equal_range(
      lo, hi, Entry{0, 0, l},
      [](const Entry& a, const Entry& b) { return a.label < b.label; });
  return {first, static_cast<size_t>(last - first)};
}

bool CsrSnapshot::MatchesTopology(const Multigraph& g) const {
  if (g.num_nodes() != num_nodes_ || g.num_edges() != sources_.size()) {
    return false;
  }
  for (EdgeId e = 0; e < sources_.size(); ++e) {
    if (g.EdgeSource(e) != sources_[e] || g.EdgeTarget(e) != targets_[e]) {
      return false;
    }
  }
  return true;
}

std::vector<CsrSnapshot::EdgeRecord> CsrSnapshot::ToEdgeList() const {
  std::vector<EdgeRecord> out(sources_.size());
  for (EdgeId e = 0; e < sources_.size(); ++e) {
    out[e] = EdgeRecord{sources_[e], targets_[e],
                        label_names_[edge_labels_[e]]};
  }
  return out;
}

}  // namespace kgq
