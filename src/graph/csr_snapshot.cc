#include "graph/csr_snapshot.h"

#include <algorithm>
#include <unordered_map>

namespace kgq {

template <typename SpellFn>
CsrSnapshot CsrSnapshot::Build(const Multigraph& g,
                               const std::vector<ConstId>& edge_label_const,
                               SpellFn&& spell) {
  CsrSnapshot snap;
  size_t n = g.num_nodes();
  size_t m = g.num_edges();
  snap.num_nodes_ = n;
  snap.sources_.resize(m);
  snap.targets_.resize(m);
  snap.edge_labels_.resize(m);

  // Re-intern the distinct label constants into dense LabelIds in first
  // appearance (edge-id) order.
  std::unordered_map<ConstId, LabelId> label_index;
  for (EdgeId e = 0; e < m; ++e) {
    snap.sources_[e] = g.EdgeSource(e);
    snap.targets_[e] = g.EdgeTarget(e);
    ConstId c = edge_label_const[e];
    auto [it, inserted] =
        label_index.emplace(c, static_cast<LabelId>(label_index.size()));
    if (inserted) {
      snap.label_names_.push_back(spell(c));
      snap.label_counts_.push_back(0);
    }
    snap.edge_labels_[e] = it->second;
    ++snap.label_counts_[it->second];
  }

  // Counting sort of the edges by source (out view) and by target (in
  // view). Edges are visited in ascending id, so entries within one
  // node keep ascending edge id — the Multigraph insertion order.
  snap.out_offsets_.assign(n + 1, 0);
  snap.in_offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    ++snap.out_offsets_[snap.sources_[e] + 1];
    ++snap.in_offsets_[snap.targets_[e] + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    snap.out_offsets_[i] += snap.out_offsets_[i - 1];
    snap.in_offsets_[i] += snap.in_offsets_[i - 1];
  }
  snap.out_entries_.resize(m);
  snap.in_entries_.resize(m);
  std::vector<size_t> out_cursor(snap.out_offsets_.begin(),
                                 snap.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(snap.in_offsets_.begin(),
                                snap.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    LabelId l = snap.edge_labels_[e];
    snap.out_entries_[out_cursor[snap.sources_[e]]++] =
        Entry{e, snap.targets_[e], l};
    snap.in_entries_[in_cursor[snap.targets_[e]]++] =
        Entry{e, snap.sources_[e], l};
  }

  // Label-partitioned copies: within each node span, stable-sort by
  // label — stability keeps ascending edge id inside every partition.
  snap.out_label_entries_ = snap.out_entries_;
  snap.in_label_entries_ = snap.in_entries_;
  auto by_label = [](const Entry& a, const Entry& b) {
    return a.label < b.label;
  };
  for (NodeId v = 0; v < n; ++v) {
    std::stable_sort(
        snap.out_label_entries_.begin() + snap.out_offsets_[v],
        snap.out_label_entries_.begin() + snap.out_offsets_[v + 1], by_label);
    std::stable_sort(
        snap.in_label_entries_.begin() + snap.in_offsets_[v],
        snap.in_label_entries_.begin() + snap.in_offsets_[v + 1], by_label);
  }
  return snap;
}

CsrSnapshot CsrSnapshot::FromGraph(const LabeledGraph& g) {
  std::vector<ConstId> labels(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) labels[e] = g.EdgeLabel(e);
  return Build(g.topology(), labels,
               [&](ConstId c) { return g.dict().Lookup(c); });
}

CsrSnapshot CsrSnapshot::FromGraph(const PropertyGraph& g) {
  return FromGraph(g.labeled());
}

CsrSnapshot CsrSnapshot::FromGraph(const VectorGraph& g) {
  std::vector<ConstId> labels(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) labels[e] = g.EdgeFeature(e, 0);
  return Build(g.topology(), labels,
               [&](ConstId c) { return g.dict().Lookup(c); });
}

CsrSnapshot CsrSnapshot::FromTopology(const Multigraph& g) {
  std::vector<ConstId> labels(g.num_edges(), 0);
  return Build(g, labels, [](ConstId) { return std::string(); });
}

CsrSnapshot CsrSnapshot::FromLabeledEdges(
    const Multigraph& g,
    const std::function<std::string(EdgeId)>& label_of) {
  Interner dict;
  std::vector<ConstId> labels(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    labels[e] = dict.Intern(label_of(e));
  }
  return Build(g, labels, [&](ConstId c) { return dict.Lookup(c); });
}

size_t CsrSnapshot::LabelFrequency(std::string_view name) const {
  std::optional<LabelId> l = FindLabel(name);
  return l.has_value() ? label_counts_[*l] : 0;
}

std::optional<LabelId> CsrSnapshot::FindLabel(std::string_view name) const {
  for (LabelId l = 0; l < label_names_.size(); ++l) {
    if (label_names_[l] == name) return l;
  }
  return std::nullopt;
}

CsrSnapshot::Span CsrSnapshot::ForLabel(const std::vector<Entry>& entries,
                                        const std::vector<size_t>& offsets,
                                        NodeId n, LabelId l) const {
  const Entry* lo = entries.data() + offsets[n];
  const Entry* hi = entries.data() + offsets[n + 1];
  auto [first, last] = std::equal_range(
      lo, hi, Entry{0, 0, l},
      [](const Entry& a, const Entry& b) { return a.label < b.label; });
  return {first, static_cast<size_t>(last - first)};
}

bool CsrSnapshot::MatchesTopology(const Multigraph& g) const {
  if (g.num_nodes() != num_nodes_ || g.num_edges() != sources_.size()) {
    return false;
  }
  for (EdgeId e = 0; e < sources_.size(); ++e) {
    if (g.EdgeSource(e) != sources_[e] || g.EdgeTarget(e) != targets_[e]) {
      return false;
    }
  }
  return true;
}

std::vector<CsrSnapshot::EdgeRecord> CsrSnapshot::ToEdgeList() const {
  std::vector<EdgeRecord> out(sources_.size());
  for (EdgeId e = 0; e < sources_.size(); ++e) {
    out[e] = EdgeRecord{sources_[e], targets_[e],
                        label_names_[edge_labels_[e]]};
  }
  return out;
}

}  // namespace kgq
