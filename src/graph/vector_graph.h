#ifndef KGQ_GRAPH_VECTOR_GRAPH_H_
#define KGQ_GRAPH_VECTOR_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/multigraph.h"
#include "util/interner.h"
#include "util/result.h"

namespace kgq {

/// A vector-labeled graph V = (N, E, ρ, λ) of dimension d: λ assigns to
/// every node and edge a vector of d values from Const (Section 3,
/// Figure 2(c)). The paper's ⊥ ("no value in this row") is kNullConst.
///
/// This model unifies labels and properties and is the input format of
/// message-passing algorithms: the 1-WL test and the GNN layers consume a
/// VectorGraph (gnn/ additionally maps Const features to numeric ones).
class VectorGraph {
 public:
  /// Creates an empty graph whose feature vectors have `dimension` rows.
  /// `dimension` must be >= 1.
  explicit VectorGraph(size_t dimension);

  size_t dimension() const { return dimension_; }

  /// Adds a node with the given feature vector (must have size d; use
  /// kNullConst for ⊥ rows). Fails on dimension mismatch.
  Result<NodeId> AddNode(std::vector<ConstId> features);

  /// Adds a node whose features are interned from strings; "⊥" entries
  /// can be passed as empty strings.
  Result<NodeId> AddNodeFromStrings(
      const std::vector<std::string_view>& features);

  /// Adds an edge with the given feature vector.
  Result<EdgeId> AddEdge(NodeId from, NodeId to,
                         std::vector<ConstId> features);

  /// Adds an edge whose features are interned from strings.
  Result<EdgeId> AddEdgeFromStrings(
      NodeId from, NodeId to, const std::vector<std::string_view>& features);

  size_t num_nodes() const { return graph_.num_nodes(); }
  size_t num_edges() const { return graph_.num_edges(); }
  bool HasNode(NodeId n) const { return graph_.HasNode(n); }
  bool HasEdge(EdgeId e) const { return graph_.HasEdge(e); }
  NodeId EdgeSource(EdgeId e) const { return graph_.EdgeSource(e); }
  NodeId EdgeTarget(EdgeId e) const { return graph_.EdgeTarget(e); }
  const std::vector<EdgeId>& OutEdges(NodeId n) const {
    return graph_.OutEdges(n);
  }
  const std::vector<EdgeId>& InEdges(NodeId n) const {
    return graph_.InEdges(n);
  }

  /// λ(n)_i — the i-th feature of node n (0-based; the paper's f_1 is
  /// index 0).
  ConstId NodeFeature(NodeId n, size_t i) const {
    return node_features_[n * dimension_ + i];
  }
  /// λ(e)_i — the i-th feature of edge e.
  ConstId EdgeFeature(EdgeId e, size_t i) const {
    return edge_features_[e * dimension_ + i];
  }

  /// λ(n)_i as a string ("⊥" for kNullConst).
  const std::string& NodeFeatureString(NodeId n, size_t i) const {
    return dict_.Lookup(NodeFeature(n, i));
  }
  const std::string& EdgeFeatureString(EdgeId e, size_t i) const {
    return dict_.Lookup(EdgeFeature(e, i));
  }

  const Multigraph& topology() const { return graph_; }

  Interner& dict() { return dict_; }
  const Interner& dict() const { return dict_; }

 private:
  size_t dimension_;
  Multigraph graph_;
  Interner dict_;
  std::vector<ConstId> node_features_;  // flattened n × d
  std::vector<ConstId> edge_features_;  // flattened m × d
};

}  // namespace kgq

#endif  // KGQ_GRAPH_VECTOR_GRAPH_H_
