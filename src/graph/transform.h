#ifndef KGQ_GRAPH_TRANSFORM_H_
#define KGQ_GRAPH_TRANSFORM_H_

#include <functional>
#include <vector>

#include "graph/labeled_graph.h"
#include "util/bitset.h"

namespace kgq {

/// Structural transformations on labeled graphs — the "flexible
/// structure that permits growing and shrinking ... and integration"
/// the paper credits for graphs' ubiquity (Section 2.1), as library
/// operations.

/// Result of a node-subset extraction: the subgraph plus the mapping
/// back to the original ids.
struct Subgraph {
  LabeledGraph graph;
  /// original node id of each subgraph node (dense, ascending).
  std::vector<NodeId> node_origin;
  /// original edge id of each subgraph edge.
  std::vector<EdgeId> edge_origin;
};

/// The subgraph induced by `nodes`: those nodes plus every edge with
/// both endpoints inside.
Subgraph InducedSubgraph(const LabeledGraph& graph, const Bitset& nodes);

/// The same graph with every edge reversed (ρ(e) swapped); labels kept.
LabeledGraph ReverseGraph(const LabeledGraph& graph);

/// Keeps only the edges for which `keep(e)` is true (all nodes stay).
Subgraph FilterEdges(const LabeledGraph& graph,
                     const std::function<bool(EdgeId)>& keep);

/// Disjoint union: nodes and edges of `b` appended after those of `a`
/// (the graph-integration primitive; node ids of b shift by
/// a.num_nodes()). Labels are re-interned into the result's dictionary.
LabeledGraph DisjointUnion(const LabeledGraph& a, const LabeledGraph& b);

}  // namespace kgq

#endif  // KGQ_GRAPH_TRANSFORM_H_
