#ifndef KGQ_GRAPH_MULTIGRAPH_H_
#define KGQ_GRAPH_MULTIGRAPH_H_

#include <cstdint>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace kgq {

/// Dense node identifier (an index into the node arrays).
using NodeId = uint32_t;
/// Dense edge identifier (an index into the edge arrays).
using EdgeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;
/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = 0xFFFFFFFFu;

/// A directed multigraph (N, E, ρ): the common substrate of every data
/// model in Section 3 of the paper. Multiple edges may connect the same
/// pair of nodes; ρ maps each edge to its (source, target) pair.
///
/// Nodes and edges are identified by dense indexes, so per-node and
/// per-edge annotations (labels, properties, feature vectors) are plain
/// arrays in the model classes layered on top.
class Multigraph {
 public:
  Multigraph() = default;

  /// Creates a graph with `num_nodes` isolated nodes.
  explicit Multigraph(size_t num_nodes);

  /// Adds an isolated node and returns its id.
  NodeId AddNode();

  /// Adds `count` isolated nodes; returns the id of the first.
  NodeId AddNodes(size_t count);

  /// Adds an edge from `from` to `to`. Fails with InvalidArgument if
  /// either endpoint is not a node of this graph.
  Result<EdgeId> AddEdge(NodeId from, NodeId to);

  size_t num_nodes() const { return out_edges_.size(); }
  size_t num_edges() const { return sources_.size(); }

  bool HasNode(NodeId n) const { return n < num_nodes(); }
  bool HasEdge(EdgeId e) const { return e < num_edges(); }

  /// ρ(e).first — the starting node of edge e.
  NodeId EdgeSource(EdgeId e) const { return sources_[e]; }
  /// ρ(e).second — the ending node of edge e.
  NodeId EdgeTarget(EdgeId e) const { return targets_[e]; }

  /// Edges whose source is n, in insertion order.
  const std::vector<EdgeId>& OutEdges(NodeId n) const {
    return out_edges_[n];
  }
  /// Edges whose target is n, in insertion order.
  const std::vector<EdgeId>& InEdges(NodeId n) const { return in_edges_[n]; }

  /// Out-degree / in-degree of n.
  size_t OutDegree(NodeId n) const { return out_edges_[n].size(); }
  size_t InDegree(NodeId n) const { return in_edges_[n].size(); }

 private:
  std::vector<NodeId> sources_;
  std::vector<NodeId> targets_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

}  // namespace kgq

#endif  // KGQ_GRAPH_MULTIGRAPH_H_
