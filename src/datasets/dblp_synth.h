#ifndef KGQ_DATASETS_DBLP_SYNTH_H_
#define KGQ_DATASETS_DBLP_SYNTH_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/labeled_graph.h"
#include "util/rng.h"

namespace kgq {

/// Synthetic bibliography corpus standing in for the DBLP dump behind
/// the paper's Figure 1 (substitution documented in DESIGN.md: the
/// original data lives on data.world; we reproduce the *generating
/// process* — per-keyword yearly title rates — with the trends the paper
/// reports, then run the same counting query over the titles).
///
/// Modeled trends (probability that a title contains the keyword):
///  * "knowledge graph"  — logistic take-off starting 2013 (the year
///    after Google's announcement), dominating by 2020;
///  * "RDF" / "SPARQL"   — stable with a mild decline;
///  * "graph database"   — comparatively small, flat;
///  * "property graph"   — negligible;
///  * among knowledge-graph papers, the fraction also mentioning
///    RDF/SPARQL decays from 70 % (2015) to 14 % (2020) — the overlap
///    statistic the paper quotes.
struct DblpOptions {
  int start_year = 2010;
  int end_year = 2020;
  /// Titles generated per year (DBLP scale is a few hundred thousand;
  /// tests use less).
  size_t papers_per_year = 400000;
  uint64_t seed = 20210101;
};

/// The tracked keywords, in the paper's order.
const std::vector<std::string>& Figure1Keywords();

/// Streams the corpus: calls sink(year, title) for every record.
/// Titles are realistic-looking word sequences; keyword phrases are
/// embedded verbatim so the counting query is a substring scan.
void GenerateTitles(const DblpOptions& opts, Rng* rng,
                    const std::function<void(int, const std::string&)>& sink);

/// Case-insensitive substring containment (the Figure 1 query per
/// keyword and title).
bool TitleContains(const std::string& title, const std::string& keyword);

/// Output of the Figure 1 pipeline.
struct KeywordCounts {
  std::vector<int> years;
  /// keyword → per-year number of titles containing it.
  std::map<std::string, std::vector<size_t>> counts;
  /// Per-year fraction of "knowledge graph" titles that also contain
  /// "RDF" or "SPARQL" (NaN-free: 0 when there are no KG titles).
  std::vector<double> kg_rdf_overlap;
};

/// Generates the corpus and runs the counting analysis in one streaming
/// pass (no corpus materialization).
KeywordCounts RunFigure1Pipeline(const DblpOptions& opts, Rng* rng);

/// Shape of the synthetic bibliographic *graph* (the same corpus, as a
/// labeled graph instead of a title stream) — the query-planning
/// workload of bench_e11_crpq_plans.
struct DblpGraphOptions {
  size_t num_papers = 3000;
  size_t num_authors = 800;
  size_t num_venues = 40;
  /// Authors per paper are 1 + Below(max_coauthors).
  size_t max_coauthors = 3;
  /// Citations per paper are Below(max_citations + 1), to earlier papers
  /// only (the citation subgraph is a DAG).
  size_t max_citations = 8;
  uint64_t seed = 20210101;
};

/// Builds the graph. Node labels: `paper`, `author`, `venue`, and one
/// keyword node per Figure1Keywords() phrase (label = the phrase with
/// spaces replaced by '_', e.g. `knowledge_graph`). Edge labels:
///
///   author -[writes]-> paper        (1 + Below(max_coauthors) per paper)
///   paper  -[in]->     venue        (exactly one)
///   paper  -[about]->  keyword      (skewed: `knowledge_graph` is ~20×
///                                    more common than `property_graph`,
///                                    so keyword anchors differ wildly in
///                                    selectivity — the spread the
///                                    planner's estimator exploits)
///   paper  -[cites]->  paper        (earlier papers only)
LabeledGraph BuildDblpGraph(const DblpGraphOptions& opts, Rng* rng);

}  // namespace kgq

#endif  // KGQ_DATASETS_DBLP_SYNTH_H_
