#include "datasets/contact_scenario.h"

#include <string>

namespace kgq {
namespace {

std::string RandomDate(int num_days, Rng* rng) {
  int day = static_cast<int>(rng->Below(num_days)) + 1;
  return std::to_string(1 + day % 28) + "/" + std::to_string(1 + day / 28) +
         "/21";
}

/// Poisson-ish small count: expected value `mean`, via per-unit
/// Bernoulli draws (good enough for workload shaping).
size_t DrawCount(double mean, Rng* rng) {
  size_t whole = static_cast<size_t>(mean);
  size_t count = whole;
  if (rng->Bernoulli(mean - static_cast<double>(whole))) ++count;
  return count;
}

}  // namespace

PropertyGraph ContactScenario(const ContactScenarioOptions& opts, Rng* rng) {
  PropertyGraph g;
  // People (possibly infected).
  for (size_t i = 0; i < opts.num_people; ++i) {
    bool infected = rng->Bernoulli(opts.infected_fraction);
    NodeId n = g.AddNode(infected ? "infected" : "person");
    g.SetNodeProperty(n, "name", "p" + std::to_string(i));
    g.SetNodeProperty(
        n, "age", std::to_string(18 + rng->Below(60)));
  }
  NodeId first_bus = static_cast<NodeId>(opts.num_people);
  for (size_t i = 0; i < opts.num_buses; ++i) {
    NodeId n = g.AddNode("bus");
    g.SetNodeProperty(n, "name", "bus" + std::to_string(i));
  }
  NodeId first_company =
      static_cast<NodeId>(opts.num_people + opts.num_buses);
  for (size_t i = 0; i < opts.num_companies; ++i) {
    NodeId n = g.AddNode("company");
    g.SetNodeProperty(n, "name", "company" + std::to_string(i));
  }

  // Ownership: each bus belongs to a random company.
  for (size_t b = 0; b < opts.num_buses; ++b) {
    if (opts.num_companies == 0) break;
    NodeId company =
        first_company + static_cast<NodeId>(rng->Below(opts.num_companies));
    g.AddEdge(company, first_bus + static_cast<NodeId>(b), "owns").value();
  }

  for (size_t p = 0; p < opts.num_people; ++p) {
    NodeId person = static_cast<NodeId>(p);
    if (opts.num_buses > 0) {
      size_t rides = DrawCount(opts.rides_per_person, rng);
      for (size_t r = 0; r < rides; ++r) {
        NodeId bus =
            first_bus + static_cast<NodeId>(rng->Below(opts.num_buses));
        EdgeId e = g.AddEdge(person, bus, "rides").value();
        g.SetEdgeProperty(e, "date", RandomDate(opts.num_days, rng));
      }
    }
    if (opts.num_people > 1) {
      size_t contacts = DrawCount(opts.contacts_per_person, rng);
      for (size_t c = 0; c < contacts; ++c) {
        NodeId other = static_cast<NodeId>(rng->Below(opts.num_people));
        if (other == person) continue;
        EdgeId e = g.AddEdge(person, other, "contact").value();
        g.SetEdgeProperty(e, "date", RandomDate(opts.num_days, rng));
      }
      size_t lives = DrawCount(opts.lives_per_person, rng);
      for (size_t l = 0; l < lives; ++l) {
        NodeId other = static_cast<NodeId>(rng->Below(opts.num_people));
        if (other == person) continue;
        EdgeId e = g.AddEdge(person, other, "lives").value();
        g.SetEdgeProperty(e, "zip",
                          std::to_string(8300000 + rng->Below(100) * 1000));
      }
    }
  }
  return g;
}

}  // namespace kgq
