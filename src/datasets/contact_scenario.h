#ifndef KGQ_DATASETS_CONTACT_SCENARIO_H_
#define KGQ_DATASETS_CONTACT_SCENARIO_H_

#include "graph/property_graph.h"
#include "util/rng.h"

namespace kgq {

/// Scaled-up contact-tracing scenario in the vocabulary of Figure 2:
/// people (some labeled "infected") ride buses on dated rides, contact
/// each other on dated edges, share addresses (lives edges with zip
/// codes), and companies own buses. Used by the bc_r experiments (E5)
/// and the examples, where the paper's 6-node Figure 2 needs a bigger
/// sibling.
struct ContactScenarioOptions {
  size_t num_people = 100;
  size_t num_buses = 6;
  size_t num_companies = 2;
  double infected_fraction = 0.08;
  /// Expected rides per person (each to a random bus, random day).
  double rides_per_person = 1.6;
  /// Expected contact edges per person.
  double contacts_per_person = 1.2;
  /// Expected lives (shared address) edges per person.
  double lives_per_person = 0.5;
  int num_days = 30;
};

/// Node layout: people first (0..num_people-1), then buses, then
/// companies.
PropertyGraph ContactScenario(const ContactScenarioOptions& opts, Rng* rng);

}  // namespace kgq

#endif  // KGQ_DATASETS_CONTACT_SCENARIO_H_
