#include "datasets/figure2.h"

#include <cassert>

namespace kgq {

PropertyGraph Figure2Property() {
  PropertyGraph g;
  NodeId juan = g.AddNode("person");
  NodeId ana = g.AddNode("person");
  NodeId bus = g.AddNode("bus");
  NodeId pedro = g.AddNode("infected");
  NodeId rosa = g.AddNode("person");
  NodeId company = g.AddNode("company");
  assert(juan == fig2::kJuan && ana == fig2::kAna && bus == fig2::kBus &&
         pedro == fig2::kPedro && rosa == fig2::kRosa &&
         company == fig2::kCompany);

  g.SetNodeProperty(juan, "name", "Juan");
  g.SetNodeProperty(juan, "age", "34");
  g.SetNodeProperty(ana, "name", "Ana");
  g.SetNodeProperty(ana, "age", "28");
  g.SetNodeProperty(pedro, "name", "Pedro");
  g.SetNodeProperty(rosa, "name", "Rosa");
  g.SetNodeProperty(company, "name", "TransSur");

  EdgeId juan_rides = g.AddEdge(juan, bus, "rides").value();
  g.SetEdgeProperty(juan_rides, "date", "3/4/21");
  EdgeId pedro_rides = g.AddEdge(pedro, bus, "rides").value();
  g.SetEdgeProperty(pedro_rides, "date", "3/4/21");
  EdgeId contact_ja = g.AddEdge(juan, ana, "contact").value();
  g.SetEdgeProperty(contact_ja, "date", "3/4/21");
  EdgeId lives = g.AddEdge(juan, ana, "lives").value();
  g.SetEdgeProperty(lives, "zip", "8320000");
  EdgeId owns = g.AddEdge(company, bus, "owns").value();
  EdgeId rosa_rides = g.AddEdge(rosa, bus, "rides").value();
  g.SetEdgeProperty(rosa_rides, "date", "4/4/21");
  EdgeId contact_ar = g.AddEdge(ana, rosa, "contact").value();
  g.SetEdgeProperty(contact_ar, "date", "5/4/21");

  assert(juan_rides == fig2::kJuanRides && pedro_rides == fig2::kPedroRides &&
         contact_ja == fig2::kJuanAnaContact && lives == fig2::kJuanAnaLives &&
         owns == fig2::kOwns && rosa_rides == fig2::kRosaRides &&
         contact_ar == fig2::kAnaRosaContact);
  (void)juan_rides;
  (void)pedro_rides;
  (void)contact_ja;
  (void)lives;
  (void)owns;
  (void)rosa_rides;
  (void)contact_ar;
  return g;
}

LabeledGraph Figure2Labeled() { return PropertyToLabeled(Figure2Property()); }

VectorGraph Figure2Vector(VectorSchema* schema) {
  return PropertyToVector(Figure2Property(), schema);
}

}  // namespace kgq
