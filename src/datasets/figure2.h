#ifndef KGQ_DATASETS_FIGURE2_H_
#define KGQ_DATASETS_FIGURE2_H_

#include "graph/conversions.h"
#include "graph/labeled_graph.h"
#include "graph/property_graph.h"
#include "graph/vector_graph.h"

namespace kgq {

/// The running example of the paper (Figure 2): a contact-tracing
/// scenario with people, an infected person, a bus used as transport and
/// the company that owns it. The same data is offered in all three data
/// models, exactly mirroring Figure 2(a)/(b)/(c):
///   * labeled graph      — labels only,
///   * property graph     — names/ages, ride and contact dates, the zip
///                          of the address two people share,
///   * vector-labeled     — label + properties folded into one feature
///                          vector per object (row 0 = label).
///
/// Node/edge ids are stable and exposed in the fig2 namespace so tests
/// and examples can assert on specific answers (e.g. the centrality of
/// bus n3 as a transport service, Section 4.2).
namespace fig2 {

// Node ids.
inline constexpr NodeId kJuan = 0;     ///< person, rides the bus on 3/4/21.
inline constexpr NodeId kAna = 1;      ///< person, lives with Juan.
inline constexpr NodeId kBus = 2;      ///< the bus n3 of Section 4.2.
inline constexpr NodeId kPedro = 3;    ///< infected person.
inline constexpr NodeId kRosa = 4;     ///< person, rides the same bus.
inline constexpr NodeId kCompany = 5;  ///< company that owns the bus.

// Edge ids.
inline constexpr EdgeId kJuanRides = 0;    ///< Juan -rides-> bus (3/4/21).
inline constexpr EdgeId kPedroRides = 1;   ///< Pedro -rides-> bus (3/4/21).
inline constexpr EdgeId kJuanAnaContact = 2;  ///< contact on 3/4/21.
inline constexpr EdgeId kJuanAnaLives = 3;    ///< shared address (zip).
inline constexpr EdgeId kOwns = 4;         ///< company -owns-> bus.
inline constexpr EdgeId kRosaRides = 5;    ///< Rosa -rides-> bus (4/4/21).
inline constexpr EdgeId kAnaRosaContact = 6;  ///< contact on 5/4/21.

}  // namespace fig2

/// Figure 2(b): the property graph (the richest model).
PropertyGraph Figure2Property();

/// Figure 2(a): the labeled graph (properties forgotten).
LabeledGraph Figure2Labeled();

/// Figure 2(c): the vector-labeled graph; optionally reports which
/// feature row holds which property.
VectorGraph Figure2Vector(VectorSchema* schema = nullptr);

}  // namespace kgq

#endif  // KGQ_DATASETS_FIGURE2_H_
