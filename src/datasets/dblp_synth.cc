#include "datasets/dblp_synth.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace kgq {
namespace {

const char* const kFillerWords[] = {
    "efficient", "scalable",  "learning",  "systems",   "analysis",
    "towards",   "deep",      "neural",    "approach",  "framework",
    "query",     "data",      "model",     "distributed", "adaptive",
    "semantic",  "evaluation", "optimization", "networks", "algorithms",
};
constexpr size_t kNumFiller = sizeof(kFillerWords) / sizeof(kFillerWords[0]);

/// Probability that a title of `year` contains `keyword`.
double KeywordRate(const std::string& keyword, int year) {
  double y = static_cast<double>(year);
  if (keyword == "knowledge graph") {
    // Logistic take-off centered 2016.5; ~0 before 2013, dominant after.
    return 0.00002 + 0.0030 / (1.0 + std::exp(-(y - 2016.5) * 1.1));
  }
  if (keyword == "RDF") {
    // Stable, mildly declining.
    return 0.00075 - 0.000015 * (y - 2010.0);
  }
  if (keyword == "SPARQL") {
    return 0.00030 - 0.000006 * (y - 2010.0);
  }
  if (keyword == "graph database") {
    return 0.00009;  // Comparatively small, no significant growth.
  }
  if (keyword == "property graph") {
    return 0.000015;  // Negligible.
  }
  return 0.0;
}

/// Among knowledge-graph titles, the chance of also mentioning
/// RDF/SPARQL: 70 % through 2015, linear decay to 14 % in 2020.
double KgRdfOverlapRate(int year) {
  if (year <= 2015) return 0.70;
  if (year >= 2020) return 0.14;
  return 0.70 - (0.70 - 0.14) * (year - 2015) / 5.0;
}

std::string MakeTitle(const std::vector<std::string>& phrases, Rng* rng) {
  std::string title;
  size_t filler = 2 + rng->Below(4);
  size_t phrase_slots = phrases.size();
  size_t total = filler + phrase_slots;
  size_t next_phrase = 0;
  for (size_t i = 0; i < total; ++i) {
    if (!title.empty()) title += " ";
    // Interleave phrases at random positions.
    bool place_phrase =
        next_phrase < phrases.size() &&
        (total - i == phrases.size() - next_phrase ||
         rng->Bernoulli(static_cast<double>(phrases.size() - next_phrase) /
                        static_cast<double>(total - i)));
    if (place_phrase) {
      title += phrases[next_phrase++];
    } else {
      title += kFillerWords[rng->Below(kNumFiller)];
    }
  }
  return title;
}

}  // namespace

const std::vector<std::string>& Figure1Keywords() {
  static const std::vector<std::string>* keywords =
      new std::vector<std::string>{"graph database", "RDF", "SPARQL",
                                   "property graph", "knowledge graph"};
  return *keywords;
}

void GenerateTitles(
    const DblpOptions& opts, Rng* rng,
    const std::function<void(int, const std::string&)>& sink) {
  const std::vector<std::string>& keywords = Figure1Keywords();
  for (int year = opts.start_year; year <= opts.end_year; ++year) {
    for (size_t i = 0; i < opts.papers_per_year; ++i) {
      std::vector<std::string> phrases;
      bool has_kg = rng->Bernoulli(KeywordRate("knowledge graph", year));
      if (has_kg) {
        phrases.push_back("knowledge graph");
        // Correlated overlap with RDF/SPARQL.
        if (rng->Bernoulli(KgRdfOverlapRate(year))) {
          phrases.push_back(rng->Bernoulli(0.6) ? "RDF" : "SPARQL");
        }
      }
      for (const std::string& kw : keywords) {
        if (kw == "knowledge graph") continue;
        // Independent base rates (the KG-overlap extra already added
        // RDF/SPARQL for some KG papers; duplicates are fine — a title
        // contains the keyword either way).
        if (rng->Bernoulli(KeywordRate(kw, year))) phrases.push_back(kw);
      }
      sink(year, MakeTitle(phrases, rng));
    }
  }
}

bool TitleContains(const std::string& title, const std::string& keyword) {
  if (keyword.empty() || title.size() < keyword.size()) return false;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (size_t i = 0; i + keyword.size() <= title.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < keyword.size(); ++j) {
      if (lower(title[i + j]) != lower(keyword[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

KeywordCounts RunFigure1Pipeline(const DblpOptions& opts, Rng* rng) {
  KeywordCounts out;
  for (int y = opts.start_year; y <= opts.end_year; ++y) {
    out.years.push_back(y);
  }
  size_t num_years = out.years.size();
  for (const std::string& kw : Figure1Keywords()) {
    out.counts[kw] = std::vector<size_t>(num_years, 0);
  }
  std::vector<size_t> kg_total(num_years, 0);
  std::vector<size_t> kg_with_rdf(num_years, 0);

  GenerateTitles(opts, rng, [&](int year, const std::string& title) {
    size_t yi = static_cast<size_t>(year - opts.start_year);
    bool has_kg = false;
    for (const std::string& kw : Figure1Keywords()) {
      if (TitleContains(title, kw)) {
        out.counts[kw][yi]++;
        if (kw == "knowledge graph") has_kg = true;
      }
    }
    if (has_kg) {
      kg_total[yi]++;
      if (TitleContains(title, "RDF") || TitleContains(title, "SPARQL")) {
        kg_with_rdf[yi]++;
      }
    }
  });

  out.kg_rdf_overlap.assign(num_years, 0.0);
  for (size_t i = 0; i < num_years; ++i) {
    if (kg_total[i] > 0) {
      out.kg_rdf_overlap[i] =
          static_cast<double>(kg_with_rdf[i]) / kg_total[i];
    }
  }
  return out;
}

LabeledGraph BuildDblpGraph(const DblpGraphOptions& opts, Rng* rng) {
  LabeledGraph g;

  std::vector<NodeId> authors(opts.num_authors);
  for (NodeId& a : authors) a = g.AddNode("author");
  std::vector<NodeId> venues(opts.num_venues);
  for (NodeId& v : venues) v = g.AddNode("venue");

  // One node per tracked keyword, labeled by the slugged phrase.
  std::vector<NodeId> keywords;
  std::vector<double> keyword_weight;
  for (const std::string& kw : Figure1Keywords()) {
    std::string slug = kw;
    for (char& c : slug) {
      if (c == ' ') c = '_';
    }
    keywords.push_back(g.AddNode(slug));
    // Skewed popularity in the spirit of the Figure 1 trends: KG papers
    // dominate, property-graph papers are rare. The ~20× selectivity
    // spread between keyword anchors is what the planner's cardinality
    // estimator gets to exploit.
    if (kw == "knowledge graph") {
      keyword_weight.push_back(10.0);
    } else if (kw == "property graph") {
      keyword_weight.push_back(0.5);
    } else {
      keyword_weight.push_back(2.0);
    }
  }

  auto add_edge = [&](NodeId from, NodeId to, const char* label) {
    auto added = g.AddEdge(from, to, label);
    (void)added;  // Endpoints exist by construction.
  };

  std::vector<NodeId> papers;
  papers.reserve(opts.num_papers);
  for (size_t i = 0; i < opts.num_papers; ++i) {
    NodeId p = g.AddNode("paper");
    size_t n_auth = 1 + rng->Below(opts.max_coauthors);
    for (size_t k = 0; k < n_auth; ++k) {
      add_edge(authors[rng->Below(authors.size())], p, "writes");
    }
    add_edge(p, venues[rng->Below(venues.size())], "in");
    add_edge(p, keywords[rng->WeightedIndex(keyword_weight)], "about");
    if (!papers.empty()) {
      size_t n_cites = rng->Below(opts.max_citations + 1);
      for (size_t k = 0; k < n_cites; ++k) {
        add_edge(p, papers[rng->Below(papers.size())], "cites");
      }
    }
    papers.push_back(p);
  }
  return g;
}

}  // namespace kgq
