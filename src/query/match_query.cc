#include "query/match_query.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>

#include "pathalg/pairs.h"
#include "rpq/parser.h"
#include "rpq/path_nfa.h"
#include "rpq/test_eval.h"

namespace kgq {
namespace {

/// Case-insensitive keyword scanner over raw text.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Consumes `keyword` case-insensitively (word boundary after).
  bool AcceptKeyword(std::string_view keyword) {
    SkipSpace();
    if (pos_ + keyword.size() > text_.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::toupper(static_cast<unsigned char>(keyword[i]))) {
        return false;
      }
    }
    size_t after = pos_ + keyword.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  bool AcceptChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes a literal sequence like "-[" or "]->".
  bool AcceptSeq(std::string_view seq) {
    SkipSpace();
    if (text_.substr(pos_, seq.size()) == seq) {
      pos_ += seq.size();
      return true;
    }
    return false;
  }

  Result<std::string> TakeIdentifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected identifier at position " +
                                std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Identifier or "quoted string".
  Result<std::string> TakeValue() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size()) {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          out.push_back(text_[pos_ + 1]);
          pos_ += 2;
        } else if (text_[pos_] == '"') {
          ++pos_;
          return out;
        } else {
          out.push_back(text_[pos_++]);
        }
      }
      return Status::ParseError("unterminated string");
    }
    return TakeIdentifier();
  }

  /// Raw substring until the first ')' at paren/bracket depth 0 (quotes
  /// respected); consumes the ')'.
  Result<std::string> TakeUntilNodeClose() {
    size_t start = pos_;
    size_t depth = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\\') ++pos_;
          ++pos_;
        }
        ++pos_;
        continue;
      }
      if (c == '(' || c == '[') ++depth;
      if (c == ']') --depth;
      if (c == ')') {
        if (depth == 0) {
          std::string inner(text_.substr(start, pos_ - start));
          ++pos_;
          return inner;
        }
        --depth;
      }
      ++pos_;
    }
    return Status::ParseError("unterminated node pattern");
  }

  /// Raw substring until the matching "]->", honoring nested brackets.
  Result<std::string> TakeUntilPathClose() {
    size_t depth = 1;  // We are inside "-[".
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        --depth;
        if (depth == 0) {
          std::string inner(text_.substr(start, pos_ - start));
          ++pos_;  // Consume ']'.
          if (!AcceptSeq("->")) {
            return Status::ParseError("expected '->' after ']'");
          }
          return inner;
        }
      } else if (c == '"') {
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\\') ++pos_;
          ++pos_;
        }
      }
      ++pos_;
    }
    return Status::ParseError("unterminated -[ path ]->");
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Parses `(var)` or `(var: test)`.
Result<std::pair<std::string, TestPtr>> ParseNodePattern(Scanner* scan) {
  if (!scan->AcceptChar('(')) {
    return Status::ParseError("expected '(' at position " +
                              std::to_string(scan->pos()));
  }
  KGQ_ASSIGN_OR_RETURN(std::string var, scan->TakeIdentifier());
  TestPtr test;
  if (scan->AcceptChar(':')) {
    KGQ_ASSIGN_OR_RETURN(std::string raw, scan->TakeUntilNodeClose());
    KGQ_ASSIGN_OR_RETURN(test, ParseTest(raw));
  } else if (!scan->AcceptChar(')')) {
    return Status::ParseError("expected ')' after node variable");
  }
  return std::make_pair(std::move(var), std::move(test));
}

}  // namespace

std::string MatchQuery::ToString() const {
  std::string out = "MATCH ";
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += "(" + nodes[i].var;
    if (nodes[i].test) out += ": " + nodes[i].test->ToString();
    out += ")";
    if (i < paths.size()) out += " -[ " + paths[i]->ToString() + " ]-> ";
  }
  out += " RETURN ";
  for (size_t i = 0; i < returns.size(); ++i) {
    if (i > 0) out += ", ";
    out += returns[i];
  }
  if (limit > 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

Result<MatchQuery> ParseMatchQuery(std::string_view text) {
  Scanner scan(text);
  if (!scan.AcceptKeyword("MATCH")) {
    return Status::ParseError("query must start with MATCH");
  }
  MatchQuery query;
  {
    KGQ_ASSIGN_OR_RETURN(auto first, ParseNodePattern(&scan));
    query.nodes.push_back({std::move(first.first), std::move(first.second)});
  }
  while (scan.AcceptSeq("-[")) {
    KGQ_ASSIGN_OR_RETURN(std::string raw, scan.TakeUntilPathClose());
    KGQ_ASSIGN_OR_RETURN(RegexPtr path, ParseRegex(raw));
    query.paths.push_back(std::move(path));
    KGQ_ASSIGN_OR_RETURN(auto next, ParseNodePattern(&scan));
    query.nodes.push_back({std::move(next.first), std::move(next.second)});
  }
  if (query.paths.empty()) {
    return Status::ParseError("expected at least one '-[ path ]->' hop");
  }
  for (size_t i = 0; i < query.nodes.size(); ++i) {
    for (size_t j = i + 1; j < query.nodes.size(); ++j) {
      if (query.nodes[i].var == query.nodes[j].var) {
        return Status::ParseError("variable '" + query.nodes[i].var +
                                  "' declared twice");
      }
    }
  }

  auto slot_of = [&](const std::string& var) -> TestPtr* {
    for (NodePattern& np : query.nodes) {
      if (np.var == var) return &np.test;
    }
    return nullptr;
  };

  // WHERE var.prop = value (AND ...)*.
  if (scan.AcceptKeyword("WHERE")) {
    do {
      KGQ_ASSIGN_OR_RETURN(std::string var, scan.TakeIdentifier());
      if (!scan.AcceptChar('.')) {
        return Status::ParseError("expected '.' in WHERE condition");
      }
      KGQ_ASSIGN_OR_RETURN(std::string prop, scan.TakeIdentifier());
      if (!scan.AcceptChar('=')) {
        return Status::ParseError("expected '=' in WHERE condition");
      }
      KGQ_ASSIGN_OR_RETURN(std::string value, scan.TakeValue());
      TestPtr* slot = slot_of(var);
      if (slot == nullptr) {
        return Status::ParseError("WHERE references unknown variable '" +
                                  var + "'");
      }
      TestPtr cond = TestExpr::PropEq(std::move(prop), std::move(value));
      *slot = *slot ? TestExpr::And(*slot, std::move(cond))
                    : std::move(cond);
    } while (scan.AcceptKeyword("AND"));
  }

  if (!scan.AcceptKeyword("RETURN")) {
    return Status::ParseError("expected RETURN clause");
  }
  do {
    KGQ_ASSIGN_OR_RETURN(std::string var, scan.TakeIdentifier());
    if (slot_of(var) == nullptr) {
      return Status::ParseError("RETURN references unknown variable '" +
                                var + "'");
    }
    query.returns.push_back(std::move(var));
  } while (scan.AcceptChar(','));

  if (scan.AcceptKeyword("LIMIT")) {
    KGQ_ASSIGN_OR_RETURN(std::string num, scan.TakeIdentifier());
    char* end = nullptr;
    query.limit = std::strtoull(num.c_str(), &end, 10);
    if (end == num.c_str() || *end != '\0' || query.limit == 0) {
      return Status::ParseError("LIMIT expects a positive integer");
    }
  }
  if (!scan.AtEnd()) {
    return Status::ParseError("trailing input after query (position " +
                              std::to_string(scan.pos()) + ")");
  }
  return query;
}

Result<QueryResult> ExecuteMatch(const GraphView& view,
                                 const MatchQuery& query) {
  if (query.paths.empty() || query.nodes.size() != query.paths.size() + 1) {
    return Status::InvalidArgument("malformed MATCH chain");
  }
  // Per hop: wrap the path with both endpoints' node restrictions and
  // evaluate pair semantics.
  std::vector<std::vector<Bitset>> hops;
  hops.reserve(query.paths.size());
  for (size_t i = 0; i < query.paths.size(); ++i) {
    RegexPtr full = query.paths[i];
    if (query.nodes[i].test) {
      full = Regex::Concat(Regex::NodeTest(query.nodes[i].test),
                           std::move(full));
    }
    if (query.nodes[i + 1].test) {
      full = Regex::Concat(std::move(full),
                           Regex::NodeTest(query.nodes[i + 1].test));
    }
    KGQ_ASSIGN_OR_RETURN(PathNfa nfa, PathNfa::Compile(view, *full));
    hops.push_back(AllPairs(nfa));
  }

  // Join hop relations left to right by DFS over variable assignments.
  QueryResult result;
  result.columns = query.returns;
  std::vector<std::vector<NodeId>> rows;
  std::vector<NodeId> assignment(query.nodes.size(), kNoNode);

  // Map RETURN vars to chain positions.
  std::vector<size_t> return_pos;
  for (const std::string& var : query.returns) {
    for (size_t i = 0; i < query.nodes.size(); ++i) {
      if (query.nodes[i].var == var) {
        return_pos.push_back(i);
        break;
      }
    }
  }

  std::function<void(size_t)> extend = [&](size_t next_var) {
    if (next_var == query.nodes.size()) {
      std::vector<NodeId> row;
      row.reserve(return_pos.size());
      for (size_t pos : return_pos) row.push_back(assignment[pos]);
      rows.push_back(std::move(row));
      return;
    }
    const std::vector<Bitset>& relation = hops[next_var - 1];
    relation[assignment[next_var - 1]].ForEach([&](size_t b) {
      assignment[next_var] = static_cast<NodeId>(b);
      extend(next_var + 1);
    });
  };
  for (NodeId a = 0; a < view.num_nodes(); ++a) {
    if (hops[0][a].None()) continue;
    assignment[0] = a;
    extend(1);
  }

  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  if (query.limit > 0 && rows.size() > query.limit) {
    rows.resize(query.limit);
  }
  result.rows = std::move(rows);
  return result;
}

Result<QueryResult> RunMatch(const GraphView& view, std::string_view text) {
  KGQ_ASSIGN_OR_RETURN(MatchQuery query, ParseMatchQuery(text));
  return ExecuteMatch(view, query);
}

}  // namespace kgq
