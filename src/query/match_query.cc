#include "query/match_query.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>

#include "pathalg/pairs.h"
#include "rpq/cfpq_reference.h"
#include "rpq/parser.h"
#include "rpq/path_expr.h"
#include "rpq/path_nfa.h"
#include "rpq/test_eval.h"
#include "util/text_scanner.h"

namespace kgq {
namespace {

/// Parses `(var)` or `(var: test)`.
Result<std::pair<std::string, TestPtr>> ParseNodePattern(TextScanner* scan) {
  if (!scan->AcceptChar('(')) {
    return Status::ParseError("expected '(' at position " +
                              std::to_string(scan->pos()));
  }
  KGQ_ASSIGN_OR_RETURN(std::string var, scan->TakeIdentifier());
  TestPtr test;
  if (scan->AcceptChar(':')) {
    KGQ_ASSIGN_OR_RETURN(std::string raw, scan->TakeUntilNodeClose());
    KGQ_ASSIGN_OR_RETURN(test, ParseTest(raw));
  } else if (!scan->AcceptChar(')')) {
    return Status::ParseError("expected ')' after node variable");
  }
  return std::make_pair(std::move(var), std::move(test));
}

}  // namespace

std::string MatchQuery::ToString() const {
  std::string out;
  for (const CnfGrammarPtr& g : grammars) {
    out += g->surface().ToString() + " ";
  }
  out += "MATCH ";
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += "(" + nodes[i].var;
    if (nodes[i].test) out += ": " + nodes[i].test->ToString();
    out += ")";
    if (i < paths.size()) out += " -[ " + paths[i]->ToString() + " ]-> ";
  }
  out += " RETURN ";
  for (size_t i = 0; i < returns.size(); ++i) {
    if (i > 0) out += ", ";
    out += returns[i];
  }
  if (limit > 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

Result<MatchQuery> ParseMatchQuery(std::string_view text) {
  TextScanner scan(text);
  MatchQuery query;
  while (scan.AcceptKeyword("GRAMMAR")) {
    KGQ_ASSIGN_OR_RETURN(CfGrammar surface, ParseGrammarBlock(&scan));
    for (const CnfGrammarPtr& g : query.grammars) {
      if (g->name() == surface.name) {
        return Status::ParseError("duplicate grammar '" + surface.name +
                                  "'");
      }
    }
    KGQ_ASSIGN_OR_RETURN(CnfGrammarPtr g, CnfGrammar::Normalize(surface));
    query.grammars.push_back(std::move(g));
  }
  if (!scan.AcceptKeyword("MATCH")) {
    return Status::ParseError("query must start with MATCH");
  }
  {
    KGQ_ASSIGN_OR_RETURN(auto first, ParseNodePattern(&scan));
    query.nodes.push_back({std::move(first.first), std::move(first.second)});
  }
  while (scan.AcceptSeq("-[")) {
    KGQ_ASSIGN_OR_RETURN(std::string raw, scan.TakeUntilPathClose());
    KGQ_ASSIGN_OR_RETURN(PathExprPtr path,
                         ResolvePathExpr(raw, query.grammars));
    query.paths.push_back(std::move(path));
    KGQ_ASSIGN_OR_RETURN(auto next, ParseNodePattern(&scan));
    query.nodes.push_back({std::move(next.first), std::move(next.second)});
  }
  if (query.paths.empty()) {
    return Status::ParseError("expected at least one '-[ path ]->' hop");
  }
  for (size_t i = 0; i < query.nodes.size(); ++i) {
    for (size_t j = i + 1; j < query.nodes.size(); ++j) {
      if (query.nodes[i].var == query.nodes[j].var) {
        return Status::ParseError("variable '" + query.nodes[i].var +
                                  "' declared twice");
      }
    }
  }

  auto slot_of = [&](const std::string& var) -> TestPtr* {
    for (NodePattern& np : query.nodes) {
      if (np.var == var) return &np.test;
    }
    return nullptr;
  };

  // WHERE var.prop = value (AND ...)*.
  if (scan.AcceptKeyword("WHERE")) {
    do {
      KGQ_ASSIGN_OR_RETURN(std::string var, scan.TakeIdentifier());
      if (!scan.AcceptChar('.')) {
        return Status::ParseError("expected '.' in WHERE condition");
      }
      KGQ_ASSIGN_OR_RETURN(std::string prop, scan.TakeIdentifier());
      if (!scan.AcceptChar('=')) {
        return Status::ParseError("expected '=' in WHERE condition");
      }
      KGQ_ASSIGN_OR_RETURN(std::string value, scan.TakeValue());
      TestPtr* slot = slot_of(var);
      if (slot == nullptr) {
        return Status::ParseError("WHERE references unknown variable '" +
                                  var + "'");
      }
      TestPtr cond = TestExpr::PropEq(std::move(prop), std::move(value));
      *slot = *slot ? TestExpr::And(*slot, std::move(cond))
                    : std::move(cond);
    } while (scan.AcceptKeyword("AND"));
  }

  if (!scan.AcceptKeyword("RETURN")) {
    return Status::ParseError("expected RETURN clause");
  }
  do {
    KGQ_ASSIGN_OR_RETURN(std::string var, scan.TakeIdentifier());
    if (slot_of(var) == nullptr) {
      return Status::ParseError("RETURN references unknown variable '" +
                                var + "'");
    }
    query.returns.push_back(std::move(var));
  } while (scan.AcceptChar(','));

  if (scan.AcceptKeyword("LIMIT")) {
    KGQ_ASSIGN_OR_RETURN(std::string num, scan.TakeIdentifier());
    char* end = nullptr;
    query.limit = std::strtoull(num.c_str(), &end, 10);
    if (end == num.c_str() || *end != '\0' || query.limit == 0) {
      return Status::ParseError("LIMIT expects a positive integer");
    }
  }
  if (!scan.AtEnd()) {
    return Status::ParseError("trailing input after query (position " +
                              std::to_string(scan.pos()) + ")");
  }
  return query;
}

Result<QueryResult> ExecuteMatch(const GraphView& view,
                                 const MatchQuery& query) {
  if (query.paths.empty() || query.nodes.size() != query.paths.size() + 1) {
    return Status::InvalidArgument("malformed MATCH chain");
  }
  // Per hop: wrap the path with both endpoints' node restrictions and
  // evaluate pair semantics.
  std::vector<std::vector<Bitset>> hops;
  hops.reserve(query.paths.size());
  for (size_t i = 0; i < query.paths.size(); ++i) {
    if (query.paths[i]->kind() == PathExpr::Kind::kContextFree) {
      // Context-free hop: the naive reference relation with endpoint
      // tests masked onto it (grammar relations cannot absorb node
      // tests the way regexes fold them).
      KGQ_ASSIGN_OR_RETURN(
          std::vector<Bitset> rel,
          CfpqReferenceRelation(view, *query.paths[i]->grammar(),
                                query.paths[i]->nonterminal()));
      if (query.nodes[i].test) {
        Bitset ok = MatchNodes(view, *query.nodes[i].test);
        for (size_t u = 0; u < rel.size(); ++u) {
          if (!ok.Test(u)) rel[u].ClearAll();
        }
      }
      if (query.nodes[i + 1].test) {
        Bitset ok = MatchNodes(view, *query.nodes[i + 1].test);
        for (Bitset& row : rel) row &= ok;
      }
      hops.push_back(std::move(rel));
      continue;
    }
    RegexPtr full = query.paths[i]->regex();
    if (query.nodes[i].test) {
      full = Regex::Concat(Regex::NodeTest(query.nodes[i].test),
                           std::move(full));
    }
    if (query.nodes[i + 1].test) {
      full = Regex::Concat(std::move(full),
                           Regex::NodeTest(query.nodes[i + 1].test));
    }
    KGQ_ASSIGN_OR_RETURN(PathNfa nfa, PathNfa::Compile(view, *full));
    hops.push_back(AllPairs(nfa));
  }

  // Join hop relations left to right by DFS over variable assignments.
  QueryResult result;
  result.columns = query.returns;
  std::vector<std::vector<NodeId>> rows;
  std::vector<NodeId> assignment(query.nodes.size(), kNoNode);

  // Map RETURN vars to chain positions.
  std::vector<size_t> return_pos;
  for (const std::string& var : query.returns) {
    for (size_t i = 0; i < query.nodes.size(); ++i) {
      if (query.nodes[i].var == var) {
        return_pos.push_back(i);
        break;
      }
    }
  }

  std::function<void(size_t)> extend = [&](size_t next_var) {
    if (next_var == query.nodes.size()) {
      std::vector<NodeId> row;
      row.reserve(return_pos.size());
      for (size_t pos : return_pos) row.push_back(assignment[pos]);
      rows.push_back(std::move(row));
      return;
    }
    const std::vector<Bitset>& relation = hops[next_var - 1];
    relation[assignment[next_var - 1]].ForEach([&](size_t b) {
      assignment[next_var] = static_cast<NodeId>(b);
      extend(next_var + 1);
    });
  };
  for (NodeId a = 0; a < view.num_nodes(); ++a) {
    if (hops[0][a].None()) continue;
    assignment[0] = a;
    extend(1);
  }

  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  if (query.limit > 0 && rows.size() > query.limit) {
    rows.resize(query.limit);
  }
  result.rows = std::move(rows);
  return result;
}

Result<ConjunctiveQuery> CompileMatch(const MatchQuery& query) {
  if (query.paths.empty() || query.nodes.size() != query.paths.size() + 1) {
    return Status::InvalidArgument("malformed MATCH chain");
  }
  ConjunctiveQuery cq;
  for (size_t i = 0; i < query.paths.size(); ++i) {
    cq.atoms.push_back(
        {query.nodes[i].var, query.nodes[i + 1].var, query.paths[i]});
  }
  for (const NodePattern& np : query.nodes) {
    if (np.test) cq.node_tests[np.var] = np.test;
  }
  cq.projection = query.returns;
  cq.limit = query.limit;
  return cq;
}

Result<QueryResult> ExecuteMatchPlanned(const GraphView& view,
                                        const MatchQuery& query,
                                        const MatchPlanOptions& options) {
  KGQ_ASSIGN_OR_RETURN(ConjunctiveQuery cq, CompileMatch(query));
  const CsrSnapshot* snap = options.snapshot;
  if (snap != nullptr && !snap->MatchesTopology(view.topology())) {
    snap = nullptr;
  }
  GraphStats stats = GraphStats::From(&view, snap);
  KGQ_ASSIGN_OR_RETURN(LogicalOpPtr plan,
                       PlanQuery(cq, stats, options.planner));
  ExecOptions eopts;
  eopts.parallel = options.parallel;
  eopts.snapshot = snap;
  KGQ_ASSIGN_OR_RETURN(RowSet rows, ExecutePlan(view, *plan, eopts));
  QueryResult result;
  result.columns = std::move(rows.schema);
  result.rows = std::move(rows.rows);
  return result;
}

Result<QueryResult> RunMatch(const GraphView& view, std::string_view text) {
  KGQ_ASSIGN_OR_RETURN(MatchQuery query, ParseMatchQuery(text));
  return ExecuteMatchPlanned(view, query);
}

}  // namespace kgq
