#ifndef KGQ_QUERY_MATCH_QUERY_H_
#define KGQ_QUERY_MATCH_QUERY_H_

#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "plan/exec.h"
#include "plan/optimizer.h"
#include "rpq/regex.h"
#include "util/result.h"

namespace kgq {

/// One node pattern of a MATCH chain: `(var)` or `(var: test)`.
struct NodePattern {
  std::string var;
  TestPtr test;  ///< May be null (no restriction).
};

/// A small declarative query language in the spirit of the languages the
/// tutorial surveys (Cypher, PGQL, G-CORE, SPARQL property paths): node
/// extraction by pattern matching along a chain of path expressions:
///
///   grammar SG { SG -> cites^- SG cites | cites^- cites }
///   MATCH (x: person) -[ rides ]-> (b: bus) -[ rides^- ]-> (y: infected)
///   WHERE x.age = "34" AND y.name = "Pedro"
///   RETURN x, b, y
///   LIMIT 10
///
/// * zero or more `grammar NAME { ... }` preambles before MATCH declare
///   context-free grammars (rpq/path_expr.h); hops reference them as
///   `-[ NAME ]->` or `-[ NAME.NT ]->`, mixing freely with regex hops;
/// * node patterns: `(var)` or `(var: test)` with the rpq test grammar
///   (so `(x: [person | infected])` works); variables must be distinct;
/// * each hop is any expression of the Section 4 regex grammar, or a
///   declared grammar reference;
/// * WHERE adds property-equality conjuncts on declared variables;
/// * per-hop evaluation uses existential pair semantics
///   (pathalg/pairs.h; rpq/cfpq_reference.h for context-free hops); the
///   chain is joined hop by hop;
/// * RETURN projects (deduplicated, sorted rows); LIMIT truncates.
struct MatchQuery {
  /// Declared grammars, in preamble order (names unique).
  std::vector<CnfGrammarPtr> grammars;
  std::vector<NodePattern> nodes;   ///< k+1 patterns.
  std::vector<PathExprPtr> paths;   ///< k hops (≥ 1).
  std::vector<std::string> returns;
  size_t limit = 0;  ///< 0 = no limit.

  /// Renders back in the concrete syntax (grammar preambles first) —
  /// the canonical text serve-layer caches key on.
  std::string ToString() const;
};

/// Tabular query answer: node ids per projected column.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<NodeId>> rows;
};

/// Parses the MATCH grammar above. Keywords are case-insensitive.
Result<MatchQuery> ParseMatchQuery(std::string_view text);

/// Reference evaluator: joins the chain hop by hop in textual order with
/// per-hop AllPairs relations. Retained as the oracle the planner is
/// differentially tested against (tests/test_plan_differential.cc);
/// production execution goes through ExecuteMatchPlanned. Beware: the
/// full solution set is materialized before projection; chains with huge
/// joins cost memory.
Result<QueryResult> ExecuteMatch(const GraphView& view,
                                 const MatchQuery& query);

/// Lowers the MATCH chain to the shared logical IR (plan/ir.h): one
/// PatternAtom per hop, one node-test entry per restricted variable, the
/// RETURN list as projection. Fails on malformed chains
/// (nodes.size() != paths.size() + 1 or no hops).
Result<ConjunctiveQuery> CompileMatch(const MatchQuery& query);

/// Knobs for planned MATCH execution.
struct MatchPlanOptions {
  ParallelOptions parallel;
  /// Optional CSR snapshot of view's topology (stats + fast scans); may
  /// be null. Ignored if it doesn't match the view.
  const CsrSnapshot* snapshot = nullptr;
  PlannerOptions planner;
};

/// Compile → optimize → execute through the unified physical operators.
/// Produces exactly ExecuteMatch's rows (sorted, deduplicated, limited)
/// for every PlannerOptions configuration and thread count.
Result<QueryResult> ExecuteMatchPlanned(const GraphView& view,
                                        const MatchQuery& query,
                                        const MatchPlanOptions& options = {});

/// Parse + planned execution convenience.
Result<QueryResult> RunMatch(const GraphView& view, std::string_view text);

}  // namespace kgq

#endif  // KGQ_QUERY_MATCH_QUERY_H_
