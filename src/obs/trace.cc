#include "obs/trace.h"

#include <utility>

namespace kgq {
namespace obs {

#if defined(KGQ_OBS_ENABLED)
namespace internal {
thread_local ObsSink* tl_sink = nullptr;
thread_local TraceContext* tl_trace = nullptr;
}  // namespace internal
#endif

TraceContext::TraceContext() : root_(std::make_unique<ProfileNode>()) {
  stack_.push_back(root_.get());
}

void TraceContext::OnCounter(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void TraceContext::OnHistogram(std::string_view name, uint64_t value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), HistogramStat{}).first;
  }
  HistogramStat& h = it->second;
  h.count += 1;
  h.sum += value;
  if (value < h.min) h.min = value;
  if (value > h.max) h.max = value;
}

void TraceContext::OnSpan(std::string_view path, uint64_t duration_ns) {
  auto it = spans_.find(path);
  if (it == spans_.end()) {
    it = spans_.emplace(std::string(path), SpanStat{}).first;
  }
  it->second.count += 1;
  it->second.total_ns += duration_ns;
}

ProfileNode* TraceContext::PushOp(std::string_view kind) {
  auto node = std::make_unique<ProfileNode>();
  node->kind = std::string(kind);
  ProfileNode* raw = node.get();
  stack_.back()->children.push_back(std::move(node));
  stack_.push_back(raw);
  return raw;
}

void TraceContext::PopOp() {
  if (stack_.size() > 1) stack_.pop_back();
}

ProfileNode* TraceContext::CurrentOp() {
  return stack_.size() > 1 ? stack_.back() : nullptr;
}

std::shared_ptr<const ProfileNode> TraceContext::TakeProfile() {
  std::unique_ptr<ProfileNode> root = std::move(root_);
  root_ = std::make_unique<ProfileNode>();
  stack_.clear();
  stack_.push_back(root_.get());
  if (root->children.empty()) return nullptr;
  if (root->children.size() == 1) {
    return std::shared_ptr<const ProfileNode>(std::move(root->children[0]));
  }
  return std::shared_ptr<const ProfileNode>(std::move(root));
}

uint64_t TraceContext::CounterValue(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const TraceContext::HistogramStat* TraceContext::FindHistogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const TraceContext::SpanStat* TraceContext::FindSpan(
    std::string_view path) const {
  auto it = spans_.find(path);
  return it == spans_.end() ? nullptr : &it->second;
}

}  // namespace obs
}  // namespace kgq
