#include "obs/quantile.h"

#include <algorithm>

namespace kgq {
namespace obs {

QuantileReservoir::QuantileReservoir(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void QuantileReservoir::Record(uint64_t sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (window_.size() < capacity_) {
    window_.push_back(sample);
    return;
  }
  window_[next_] = sample;
  next_ = (next_ + 1) % capacity_;
}

uint64_t QuantileReservoir::Quantile(double p) const {
  std::vector<uint64_t> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = window_;
  }
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, p);
}

uint64_t QuantileReservoir::TotalCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t QuantileReservoir::WindowSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.size();
}

std::vector<uint64_t> QuantileReservoir::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_;
}

void QuantileReservoir::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  window_.clear();
  next_ = 0;
  total_ = 0;
}

uint64_t QuantileReservoir::PercentileOfSorted(
    const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace obs
}  // namespace kgq
