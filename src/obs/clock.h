#ifndef KGQ_OBS_CLOCK_H_
#define KGQ_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace kgq {
namespace obs {

/// The single time source of the repository. Trace spans, the metric
/// histograms and the bench-harness `Timer` all read this clock, so a
/// span duration and a bench phase timing taken around the same region
/// can never disagree about what "elapsed" means.
using SteadyClock = std::chrono::steady_clock;

/// Nanoseconds on the steady clock (monotonic; epoch is unspecified —
/// only differences are meaningful).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now().time_since_epoch())
          .count());
}

}  // namespace obs
}  // namespace kgq

#endif  // KGQ_OBS_CLOCK_H_
