#include "obs/registry.h"

#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

namespace kgq {
namespace obs {

namespace {

/// Initial runtime switch: on, unless KGQ_OBS=0/off in the environment.
/// (Irrelevant when compiled out — no call site checks it.)
bool InitialEnabled() {
  const char* env = std::getenv("KGQ_OBS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0);
}

/// The calling thread's '/'-joined open-span path (leading '/').
std::string& ThreadSpanPath() {
  thread_local std::string path;
  return path;
}

/// Find-or-create in a name-keyed map of unique_ptrs, under `mu`.
template <typename T>
T* FindOrCreate(std::mutex& mu,
                std::unordered_map<std::string, std::unique_ptr<T>>* map,
                std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map->find(std::string(name));
  if (it == map->end()) {
    it = map->emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

/// Span tree node used at export time only.
struct SpanNode {
  const SpanStat* stat = nullptr;
  std::map<std::string, SpanNode> children;  // Sorted for stable output.
};

void WriteSpanNode(JsonWriter* w, const std::string& name,
                   const SpanNode& node) {
  w->BeginObject();
  w->Key("name");
  w->String(name);
  if (node.stat != nullptr) {
    uint64_t count = node.stat->count.load(std::memory_order_relaxed);
    uint64_t total = node.stat->total_ns.load(std::memory_order_relaxed);
    uint64_t mn = node.stat->min_ns.load(std::memory_order_relaxed);
    w->Key("count");
    w->UInt(count);
    w->Key("total_ns");
    w->UInt(total);
    w->Key("mean_ns");
    w->Double(count == 0 ? 0.0
                         : static_cast<double>(total) /
                               static_cast<double>(count));
    w->Key("min_ns");
    w->UInt(mn == ~0ull ? 0 : mn);
    w->Key("max_ns");
    w->UInt(node.stat->max_ns.load(std::memory_order_relaxed));
  }
  if (!node.children.empty()) {
    w->Key("children");
    w->BeginArray();
    for (const auto& [child_name, child] : node.children) {
      WriteSpanNode(w, child_name, child);
    }
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

std::atomic<bool> Registry::enabled_{InitialEnabled()};

Registry::Registry() = default;

Registry& Registry::Get() {
  // Leaked on purpose: call sites cache metric pointers in static
  // locals and the KGQ_OBS_DUMP atexit hook exports after main().
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  return FindOrCreate(mu_, &counters_, name);
}

Gauge* Registry::GetGauge(std::string_view name) {
  return FindOrCreate(mu_, &gauges_, name);
}

Histogram* Registry::GetHistogram(std::string_view name) {
  return FindOrCreate(mu_, &histograms_, name);
}

void Registry::RecordSpan(std::string_view path, uint64_t duration_ns) {
  SpanStat* stat = FindOrCreate(mu_, &spans_, path);
  stat->count.fetch_add(1, std::memory_order_relaxed);
  stat->total_ns.fetch_add(duration_ns, std::memory_order_relaxed);
  uint64_t cur = stat->min_ns.load(std::memory_order_relaxed);
  while (duration_ns < cur &&
         !stat->min_ns.compare_exchange_weak(cur, duration_ns,
                                             std::memory_order_relaxed)) {
  }
  cur = stat->max_ns.load(std::memory_order_relaxed);
  while (duration_ns > cur &&
         !stat->max_ns.compare_exchange_weak(cur, duration_ns,
                                             std::memory_order_relaxed)) {
  }
}

uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second->Value();
}

int64_t Registry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0 : it->second->Value();
}

const Histogram* Registry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(name));
  return it == histograms_.end() ? nullptr : it->second.get();
}

uint64_t Registry::SpanCount(std::string_view path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(std::string(path));
  return it == spans_.end()
             ? 0
             : it->second->count.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : spans_) {
    s->count.store(0, std::memory_order_relaxed);
    s->total_ns.store(0, std::memory_order_relaxed);
    s->min_ns.store(~0ull, std::memory_order_relaxed);
    s->max_ns.store(0, std::memory_order_relaxed);
  }
}

void Registry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("enabled");
  w->Bool(Enabled());

  w->Key("counters");
  w->BeginObject();
  {
    std::map<std::string, const Counter*> sorted;
    for (const auto& [name, c] : counters_) sorted[name] = c.get();
    for (const auto& [name, c] : sorted) {
      w->Key(name);
      w->UInt(c->Value());
    }
  }
  w->EndObject();

  w->Key("gauges");
  w->BeginObject();
  {
    std::map<std::string, const Gauge*> sorted;
    for (const auto& [name, g] : gauges_) sorted[name] = g.get();
    for (const auto& [name, g] : sorted) {
      w->Key(name);
      w->Int(g->Value());
    }
  }
  w->EndObject();

  w->Key("histograms");
  w->BeginObject();
  {
    std::map<std::string, const Histogram*> sorted;
    for (const auto& [name, h] : histograms_) sorted[name] = h.get();
    for (const auto& [name, h] : sorted) {
      w->Key(name);
      w->BeginObject();
      w->Key("count");
      w->UInt(h->Count());
      w->Key("sum");
      w->UInt(h->Sum());
      w->Key("mean");
      w->Double(h->Mean());
      w->Key("min");
      w->UInt(h->Min());
      w->Key("max");
      w->UInt(h->Max());
      // Sparse bucket list: [inclusive upper bound, count] pairs for
      // non-empty buckets only.
      w->Key("buckets");
      w->BeginArray();
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        uint64_t c = h->BucketCount(i);
        if (c == 0) continue;
        w->BeginObject();
        w->Key("le");
        w->UInt(Histogram::BucketUpperBound(i));
        w->Key("count");
        w->UInt(c);
        w->EndObject();
      }
      w->EndArray();
      w->EndObject();
    }
  }
  w->EndObject();

  // Spans as a tree rebuilt from '/'-joined paths.
  w->Key("spans");
  w->BeginArray();
  {
    SpanNode root;
    std::map<std::string, const SpanStat*> sorted;
    for (const auto& [path, s] : spans_) sorted[path] = s.get();
    for (const auto& [path, stat] : sorted) {
      SpanNode* node = &root;
      size_t pos = 0;
      while (pos <= path.size()) {
        size_t slash = path.find('/', pos);
        if (slash == std::string::npos) slash = path.size();
        node = &node->children[path.substr(pos, slash - pos)];
        pos = slash + 1;
      }
      node->stat = stat;
    }
    for (const auto& [name, node] : root.children) {
      WriteSpanNode(w, name, node);
    }
  }
  w->EndArray();

  w->EndObject();
}

void Registry::WriteReport(std::ostream& out) const {
  JsonWriter w(out);
  w.BeginObject();
  w.Key("obs");
  WriteJson(&w);
  w.EndObject();
}

bool Registry::DumpToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteReport(out);
  return true;
}

Span::Span(const char* name) {
  if (!Registry::Enabled()) return;
  std::string& path = ThreadSpanPath();
  prev_len_ = path.size();
  path += '/';
  path += name;
  active_ = true;
  start_ns_ = NowNanos();  // Last: excludes the bookkeeping above.
}

Span::~Span() {
  if (!active_) return;
  uint64_t duration = NowNanos() - start_ns_;
  std::string& path = ThreadSpanPath();
  std::string_view rel = std::string_view(path).substr(1);
  Registry::Get().RecordSpan(rel, duration);
  if (ObsSink* sink = CurrentSink()) sink->OnSpan(rel, duration);
  path.resize(prev_len_);
}

namespace {

/// KGQ_OBS_DUMP=path.json: export the registry when the process exits.
/// Registered from a static initializer of this translation unit, which
/// is linked in whenever anything touches the registry.
const bool g_dump_hook_registered = [] {
  if (std::getenv("KGQ_OBS_DUMP") != nullptr) {
    std::atexit([] {
      const char* path = std::getenv("KGQ_OBS_DUMP");
      if (path != nullptr) Registry::Get().DumpToFile(path);
    });
  }
  return true;
}();

}  // namespace

}  // namespace obs
}  // namespace kgq
