#ifndef KGQ_OBS_TRACE_H_
#define KGQ_OBS_TRACE_H_

/// Request-scoped observability: a thread-local ObsSink that receives a
/// copy of every counter/histogram/span event the KGQ_* macros emit on
/// the installing thread, and a TraceContext that aggregates them and
/// additionally carries an EXPLAIN-shaped per-operator profile tree.
///
/// The global Registry stays the always-on aggregate; a sink is an
/// *additional* destination a request can install for its own lifetime:
///
///   obs::TraceContext ctx;
///   {
///     obs::ScopedTrace trace(&ctx);
///     ExecutePlan(...);               // operators feed ctx
///   }
///   std::shared_ptr<const obs::ProfileNode> profile = ctx.TakeProfile();
///
/// Cost model (the same two-level kill switch as the macros):
///  * compiled out (-DKGQ_OBS=OFF): CurrentSink()/CurrentTrace() are
///    constexpr nullptr, ScopedTrace is an empty struct — every
///    `if (CurrentTrace())` guard is dead code, zero overhead.
///  * disabled at runtime: the macros bail on Registry::Enabled()
///    before looking at the sink — still one relaxed load.
///  * enabled, no sink installed: one additional thread-local read and
///    a predictable branch per macro call site.
///
/// Threading: a sink is installed on exactly one thread and only that
/// thread's events reach it — pool workers spawned inside an operator
/// keep feeding the global registry only. A TraceContext is therefore
/// single-threaded by construction and unsynchronized; do not share one
/// across threads.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace kgq {
namespace obs {

/// One operator of a per-request profile tree — the runtime mirror of
/// one EXPLAIN line. Deterministic fields (kind, engine, rows) depend
/// only on the plan and the epoch; `time_ns` is the only wall-clock
/// field, so gates can normalize it and byte-compare the rest.
struct ProfileNode {
  std::string kind;    ///< LogicalKindName of the operator.
  std::string engine;  ///< Physical engine ("csr"/"list", "matrix"/"nfa");
                       ///< empty when the operator has no engine choice.
  uint64_t rows_in = 0;   ///< Sum of the children's rows_out (0 for leaves).
  uint64_t rows_out = 0;  ///< Rows this operator produced.
  uint64_t time_ns = 0;   ///< Wall time, children included.
  std::vector<std::unique_ptr<ProfileNode>> children;
};

/// Receiver of per-request observability events. OnCounter/OnHistogram/
/// OnSpan mirror the three event kinds the KGQ_* macros emit (gauges are
/// process-level state, not request events, and are not forwarded).
class ObsSink {
 public:
  virtual ~ObsSink() = default;
  virtual void OnCounter(std::string_view name, uint64_t delta) = 0;
  virtual void OnHistogram(std::string_view name, uint64_t value) = 0;
  virtual void OnSpan(std::string_view path, uint64_t duration_ns) = 0;
};

/// The request-scoped sink of the serving layer: aggregates counters,
/// histogram stats and span stats per name (sorted maps, so exports are
/// stable) and owns the profile tree the executor builds via
/// PushOp/PopOp. Not thread-safe — see the file comment.
class TraceContext : public ObsSink {
 public:
  struct HistogramStat {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = ~0ull;
    uint64_t max = 0;
  };
  struct SpanStat {
    uint64_t count = 0;
    uint64_t total_ns = 0;
  };

  TraceContext();

  void OnCounter(std::string_view name, uint64_t delta) override;
  void OnHistogram(std::string_view name, uint64_t value) override;
  void OnSpan(std::string_view path, uint64_t duration_ns) override;

  /// Appends a child under the current operator and makes it current.
  /// The returned pointer stays valid for the context's lifetime.
  ProfileNode* PushOp(std::string_view kind);
  /// Closes the current operator, restoring its parent as current.
  void PopOp();
  /// The innermost open operator, or nullptr outside any PushOp.
  ProfileNode* CurrentOp();

  /// Moves the profile tree out: the root operator when exactly one was
  /// recorded at top level (the executor's shape), otherwise a synthetic
  /// "" root holding all of them; nullptr when nothing was recorded.
  std::shared_ptr<const ProfileNode> TakeProfile();

  /// Aggregate accessors (0 / nullptr-style defaults when absent).
  uint64_t CounterValue(std::string_view name) const;
  const HistogramStat* FindHistogram(std::string_view name) const;
  const SpanStat* FindSpan(std::string_view path) const;
  const std::map<std::string, uint64_t, std::less<>>& counters() const {
    return counters_;
  }

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, HistogramStat, std::less<>> histograms_;
  std::map<std::string, SpanStat, std::less<>> spans_;
  std::unique_ptr<ProfileNode> root_;   // Synthetic; kind "".
  std::vector<ProfileNode*> stack_;     // Innermost open op last.
};

#if defined(KGQ_OBS_ENABLED)

namespace internal {
/// The installing thread's current sink/trace. Two variables so that
/// CurrentTrace() needs no downcast: ScopedTrace sets both, ScopedSink
/// (a non-trace sink) sets only the sink.
extern thread_local ObsSink* tl_sink;
extern thread_local TraceContext* tl_trace;
}  // namespace internal

/// The calling thread's installed sink (nullptr when none).
inline ObsSink* CurrentSink() { return internal::tl_sink; }
/// The calling thread's installed TraceContext (nullptr when none, or
/// when the installed sink is not a TraceContext).
inline TraceContext* CurrentTrace() { return internal::tl_trace; }

/// RAII installation of a TraceContext as the calling thread's sink and
/// trace. Nests: the previous sink is restored on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceContext* ctx)
      : prev_sink_(internal::tl_sink), prev_trace_(internal::tl_trace) {
    internal::tl_sink = ctx;
    internal::tl_trace = ctx;
  }
  ~ScopedTrace() {
    internal::tl_sink = prev_sink_;
    internal::tl_trace = prev_trace_;
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  ObsSink* prev_sink_;
  TraceContext* prev_trace_;
};

/// RAII installation of an arbitrary ObsSink (no profile tree — the
/// executor only builds trees into a TraceContext).
class ScopedSink {
 public:
  explicit ScopedSink(ObsSink* sink)
      : prev_sink_(internal::tl_sink), prev_trace_(internal::tl_trace) {
    internal::tl_sink = sink;
    internal::tl_trace = nullptr;
  }
  ~ScopedSink() {
    internal::tl_sink = prev_sink_;
    internal::tl_trace = prev_trace_;
  }

  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  ObsSink* prev_sink_;
  TraceContext* prev_trace_;
};

#else  // !defined(KGQ_OBS_ENABLED)

/// Compiled out: the accessors are constant nullptr, so every guarded
/// block (`if (auto* t = CurrentTrace()) ...`) folds to nothing, and the
/// scoped installers are empty.
inline constexpr ObsSink* CurrentSink() { return nullptr; }
inline constexpr TraceContext* CurrentTrace() { return nullptr; }

class ScopedTrace {
 public:
  explicit ScopedTrace(TraceContext*) {}
};

class ScopedSink {
 public:
  explicit ScopedSink(ObsSink*) {}
};

#endif  // KGQ_OBS_ENABLED

}  // namespace obs
}  // namespace kgq

#endif  // KGQ_OBS_TRACE_H_
