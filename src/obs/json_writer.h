#ifndef KGQ_OBS_JSON_WRITER_H_
#define KGQ_OBS_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace kgq {
namespace obs {

/// Minimal streaming JSON writer: the one emitter behind every
/// machine-readable `BENCH_*.json` file and the metric registry's
/// export, so all of them agree on escaping, indentation and number
/// formatting. No DOM, no allocation per value — call sequence mirrors
/// the document structure:
///
///   JsonWriter w(out);
///   w.BeginObject();
///   w.Key("benchmark"); w.String("e2_enum_delay");
///   w.Key("rows");      w.BeginArray();
///   ...                 w.EndArray();
///   w.EndObject();      // emits the trailing newline
///
/// The writer inserts commas and 2-space indentation; misuse (a value
/// without a Key inside an object, unbalanced End calls) is a
/// programming error and only lightly guarded.
class JsonWriter {
 public:
  /// `compact` drops all whitespace (no indentation, no space after
  /// ':', no trailing newline) — the mode for one-line wire responses;
  /// the default pretty mode is for files meant to be read by humans.
  explicit JsonWriter(std::ostream& out, bool compact = false)
      : out_(out), compact_(compact) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object member key; must be followed by exactly one value or
  /// Begin*() call.
  void Key(std::string_view k);

  void String(std::string_view s);
  void Int(int64_t v);
  void UInt(uint64_t v);
  /// `digits` is the significant-digit budget (printf %.*g).
  void Double(double v, int digits = 9);
  void Bool(bool v);
  void Null();

 private:
  enum class Scope : uint8_t { kObject, kArray };

  /// Writes separators/indentation due before a value or key.
  void Prepare();
  void WriteEscaped(std::string_view s);
  void Indent();

  std::ostream& out_;
  const bool compact_ = false;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;   // No comma needed at the next element.
  bool after_key_ = false;       // The next value continues a "key": line.
};

}  // namespace obs
}  // namespace kgq

#endif  // KGQ_OBS_JSON_WRITER_H_
