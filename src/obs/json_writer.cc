#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace kgq {
namespace obs {

void JsonWriter::Indent() {
  if (compact_) return;
  out_ << '\n';
  for (size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::Prepare() {
  if (after_key_) {
    after_key_ = false;
    return;  // Value continues the "key": line.
  }
  if (stack_.empty()) return;  // Top-level value.
  if (!first_in_scope_) out_ << ',';
  first_in_scope_ = false;
  Indent();
}

void JsonWriter::BeginObject() {
  Prepare();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_ = true;
}

void JsonWriter::EndObject() {
  bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) Indent();
  out_ << '}';
  first_in_scope_ = false;
  if (stack_.empty() && !compact_) out_ << '\n';
}

void JsonWriter::BeginArray() {
  Prepare();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_ = true;
}

void JsonWriter::EndArray() {
  bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) Indent();
  out_ << ']';
  first_in_scope_ = false;
  if (stack_.empty() && !compact_) out_ << '\n';
}

void JsonWriter::Key(std::string_view k) {
  if (!first_in_scope_) out_ << ',';
  first_in_scope_ = false;
  Indent();
  out_ << '"';
  WriteEscaped(k);
  out_ << (compact_ ? "\":" : "\": ");
  after_key_ = true;
}

void JsonWriter::String(std::string_view s) {
  Prepare();
  out_ << '"';
  WriteEscaped(s);
  out_ << '"';
}

void JsonWriter::Int(int64_t v) {
  Prepare();
  out_ << v;
}

void JsonWriter::UInt(uint64_t v) {
  Prepare();
  out_ << v;
}

void JsonWriter::Double(double v, int digits) {
  Prepare();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN literals.
    out_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  out_ << buf;
}

void JsonWriter::Bool(bool v) {
  Prepare();
  out_ << (v ? "true" : "false");
}

void JsonWriter::Null() {
  Prepare();
  out_ << "null";
}

void JsonWriter::WriteEscaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
}

}  // namespace obs
}  // namespace kgq
