#ifndef KGQ_OBS_QUANTILE_H_
#define KGQ_OBS_QUANTILE_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace kgq {
namespace obs {

/// Exact quantiles over a bounded window of samples — the shared
/// percentile machinery behind `{"op":"stats"}`/`{"op":"metrics"}` and
/// the serving bench. The registry's log-bucketed histograms answer
/// "what order of magnitude"; this answers "what exactly is p99", which
/// is what latency SLOs are quoted in.
///
/// Semantics:
///  * Up to `capacity` samples are retained verbatim. Beyond that the
///    window is a ring — each new sample overwrites the oldest — so
///    quantiles track the most recent `capacity` observations with
///    bounded memory.
///  * Quantile(p) is the nearest-rank percentile over the current
///    window, using the exact formula the benches have always used
///    (PercentileOfSorted), so a bench phase and a served stats line
///    computed from the same samples agree to the byte.
///
/// Thread-safe: one mutex around the window. Recording is O(1); reading
/// a quantile copies and sorts the window (an introspection surface,
/// not a hot path).
class QuantileReservoir {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  explicit QuantileReservoir(size_t capacity = kDefaultCapacity);

  /// Adds one sample (overwriting the oldest once the window is full).
  void Record(uint64_t sample);

  /// Nearest-rank percentile of the current window; p in [0, 100].
  /// 0 when no samples have been recorded.
  uint64_t Quantile(double p) const;

  /// Samples ever recorded (including ones that have aged out).
  uint64_t TotalCount() const;
  /// Samples currently held (min(TotalCount, capacity)).
  size_t WindowSize() const;
  size_t capacity() const { return capacity_; }

  /// A copy of the current window, unsorted — the offline-recompute
  /// surface the metrics tests verify Quantile() against.
  std::vector<uint64_t> Samples() const;

  void Reset();

  /// The nearest-rank formula over an already sorted vector:
  /// index round(p/100 * (n-1)), clamped; 0 for an empty vector.
  static uint64_t PercentileOfSorted(const std::vector<uint64_t>& sorted,
                                     double p);

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<uint64_t> window_;
  size_t next_ = 0;      // Ring cursor once the window is full.
  uint64_t total_ = 0;
};

}  // namespace obs
}  // namespace kgq

#endif  // KGQ_OBS_QUANTILE_H_
