#ifndef KGQ_OBS_REGISTRY_H_
#define KGQ_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/clock.h"
#include "obs/json_writer.h"

namespace kgq {
namespace obs {

/// True when the layer is compiled in (the default). A `-DKGQ_OBS=OFF`
/// CMake configure drops the definition of KGQ_OBS_ENABLED and every
/// KGQ_* macro in obs.h expands to nothing; the classes below still
/// exist (direct use keeps working), only the macro call sites vanish.
#if defined(KGQ_OBS_ENABLED)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// Monotonically increasing event count. Increments are relaxed atomic
/// adds: exact under arbitrary concurrency, never a synchronization
/// point.
class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-observed value (e.g. "DP configs materialized by the most
/// recent Count call"). Set/Add are relaxed atomics.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram of non-negative integer samples (durations in
/// nanoseconds, frontier sizes, queue depths...).
///
/// Bucket boundaries are powers of two and are part of the public
/// contract (tests pin them): bucket 0 holds the value 0, bucket i ≥ 1
/// holds [2^(i-1), 2^i - 1]. A recorded sample costs a handful of
/// relaxed atomic adds plus two relaxed CAS loops for min/max.
class Histogram {
 public:
  /// Buckets 0..64: zero, then one per bit width.
  static constexpr size_t kNumBuckets = 65;

  /// The bucket a value lands in: 0 for 0, bit_width(v) otherwise.
  static size_t BucketIndex(uint64_t v) {
    return v == 0 ? 0 : static_cast<size_t>(64 - __builtin_clzll(v));
  }

  /// Inclusive upper bound of bucket i (0 for bucket 0, 2^i - 1 else;
  /// bucket 64 saturates at UINT64_MAX).
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~0ull;
    return (1ull << i) - 1;
  }

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    UpdateMin(v);
    UpdateMax(v);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t Min() const {
    uint64_t m = min_.load(std::memory_order_relaxed);
    return m == ~0ull ? 0 : m;
  }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    uint64_t c = Count();
    return c == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(c);
  }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  void UpdateMin(uint64_t v) {
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(uint64_t v) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> buckets_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::atomic<uint64_t> max_{0};
};

/// Aggregated statistics of one span path ("analytics.pagerank", or
/// nested: "e2.delay_sweep/reach_table.build").
struct SpanStat {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> min_ns{~0ull};
  std::atomic<uint64_t> max_ns{0};
};

/// Process-wide, thread-safe home of every metric. Metric objects are
/// created on first use and are *never removed* — call sites may cache
/// the returned pointers (the KGQ_* macros do, in a function-local
/// static) and keep using them for the life of the process. Reset()
/// zeroes values but keeps the objects, so cached pointers stay valid.
///
/// Runtime switch: collection is on by default (when compiled in) and
/// controlled by SetEnabled / the KGQ_OBS environment variable
/// ("0"/"off" disables). Every macro call site checks Enabled() with
/// one relaxed atomic load before touching anything else.
///
/// Environment:
///   KGQ_OBS=0|off     start with runtime collection disabled
///   KGQ_OBS_DUMP=path write the JSON report to `path` at process exit
class Registry {
 public:
  /// The singleton (never destroyed; safe to use from atexit hooks).
  static Registry& Get();

  /// One relaxed atomic load — the entire cost of a disabled-at-runtime
  /// macro call site.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create. Stable pointers; name is the registry key.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Records one completed span occurrence. `path` is '/'-joined from
  /// the enclosing spans of the recording thread; individual span names
  /// must not contain '/'.
  void RecordSpan(std::string_view path, uint64_t duration_ns);

  /// Snapshot accessors (0 / nullptr-style defaults when absent).
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  /// nullptr when the histogram does not exist.
  const Histogram* FindHistogram(std::string_view name) const;
  /// Number of completed occurrences of a span path (0 if never seen).
  uint64_t SpanCount(std::string_view path) const;

  /// Zeroes every metric value; keeps all objects (cached pointers stay
  /// valid). Used by tests and by benches that want per-phase reports.
  void Reset();

  /// Writes the registry as one JSON object:
  ///   {"enabled": ..., "counters": {...}, "gauges": {...},
  ///    "histograms": {...}, "spans": [...]}
  /// Span paths are exported as a tree ("children" arrays), rebuilt
  /// from the '/'-joined paths. Keys are sorted for stable diffs.
  void WriteJson(JsonWriter* w) const;

  /// Writes `{"obs": {...}}` to `out` — the standalone report shape of
  /// the KGQ_OBS_DUMP env hook.
  void WriteReport(std::ostream& out) const;

  /// WriteReport to a file; returns false when the file cannot be
  /// opened.
  bool DumpToFile(const std::string& path) const;

 private:
  Registry();

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, std::unique_ptr<SpanStat>> spans_;

  static std::atomic<bool> enabled_;
};

/// RAII trace span. Construction stamps the steady clock and pushes the
/// name onto the calling thread's span stack; destruction records the
/// duration under the '/'-joined path of all open spans on this thread,
/// giving nested (parent/child) aggregation for free. When collection
/// is disabled at construction time the span is inert (no clock read,
/// no allocation).
///
/// `name` must outlive the span (string literals in practice) and must
/// not contain '/'.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  size_t prev_len_ = 0;    // Thread path length to restore on close.
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace kgq

#endif  // KGQ_OBS_REGISTRY_H_
