#ifndef KGQ_OBS_OBS_H_
#define KGQ_OBS_OBS_H_

/// kgq::obs — the observability front-end the kernels are wired
/// through: counters, gauges, log-bucketed histograms and RAII trace
/// spans behind macros with a two-level kill switch.
///
///  * Compile time: configuring with `-DKGQ_OBS=OFF` removes the
///    KGQ_OBS_ENABLED definition and every macro below expands to
///    nothing — arguments are not evaluated, no symbol is referenced,
///    the instrumented kernels are token-for-token the bare kernels.
///  * Run time (compiled in): collection is on by default; when
///    disabled via Registry::SetEnabled(false) or KGQ_OBS=0 in the
///    environment, a macro call site costs exactly one relaxed atomic
///    load and a predictable branch.
///
/// When enabled, each call site resolves its metric once (function-
/// local static pointer; metrics are never removed from the registry)
/// and then pays only the relaxed atomic updates of the metric itself.
///
/// The guarantee the differential tests pin down: instrumentation is
/// passive. Kernel outputs are bit-identical with obs compiled out,
/// disabled, or fully collecting.
///
/// Naming convention: "subsystem.component.metric" (dots, not slashes —
/// '/' is the span-nesting separator), units spelled in the name
/// suffix: `_ns` nanoseconds, `_ms` milliseconds; unsuffixed counts.
/// README "Observability" lists every name exported by the library.

#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace.h"

#if defined(KGQ_OBS_ENABLED)

/// True when runtime collection is active. Use to guard a block of
/// instrumentation-only work (computing a value worth recording); the
/// whole expression is constant-false — and the guarded block dead
/// code — when compiled out.
#define KGQ_OBS_ON() (::kgq::obs::Registry::Enabled())

/// counter(name) += delta — in the global registry and, when the
/// calling thread has a request-scoped sink installed (obs/trace.h), in
/// that sink too.
#define KGQ_COUNTER_ADD(name, delta)                                     \
  do {                                                                   \
    if (::kgq::obs::Registry::Enabled()) {                               \
      static ::kgq::obs::Counter* kgq_obs_counter_ =                     \
          ::kgq::obs::Registry::Get().GetCounter(name);                  \
      const uint64_t kgq_obs_delta_ = static_cast<uint64_t>(delta);      \
      kgq_obs_counter_->Add(kgq_obs_delta_);                             \
      if (::kgq::obs::ObsSink* kgq_obs_sink_ = ::kgq::obs::CurrentSink()) \
        kgq_obs_sink_->OnCounter(name, kgq_obs_delta_);                  \
    }                                                                    \
  } while (0)

/// counter(name) += 1.
#define KGQ_COUNTER_INC(name) KGQ_COUNTER_ADD(name, 1)

/// gauge(name) = value (last observation wins).
#define KGQ_GAUGE_SET(name, value)                                       \
  do {                                                                   \
    if (::kgq::obs::Registry::Enabled()) {                               \
      static ::kgq::obs::Gauge* kgq_obs_gauge_ =                         \
          ::kgq::obs::Registry::Get().GetGauge(name);                    \
      kgq_obs_gauge_->Set(static_cast<int64_t>(value));                  \
    }                                                                    \
  } while (0)

/// histogram(name) <- sample (non-negative integer); mirrored into the
/// calling thread's sink when one is installed.
#define KGQ_HISTOGRAM_RECORD(name, value)                                \
  do {                                                                   \
    if (::kgq::obs::Registry::Enabled()) {                               \
      static ::kgq::obs::Histogram* kgq_obs_histogram_ =                 \
          ::kgq::obs::Registry::Get().GetHistogram(name);                \
      const uint64_t kgq_obs_value_ = static_cast<uint64_t>(value);      \
      kgq_obs_histogram_->Record(kgq_obs_value_);                        \
      if (::kgq::obs::ObsSink* kgq_obs_sink_ = ::kgq::obs::CurrentSink()) \
        kgq_obs_sink_->OnHistogram(name, kgq_obs_value_);                \
    }                                                                    \
  } while (0)

#define KGQ_OBS_CONCAT_INNER_(a, b) a##b
#define KGQ_OBS_CONCAT_(a, b) KGQ_OBS_CONCAT_INNER_(a, b)

/// Opens an RAII trace span covering the rest of the enclosing scope.
/// Spans nest across call boundaries per thread; `name` must be a
/// string literal without '/'.
#define KGQ_SPAN(name) \
  ::kgq::obs::Span KGQ_OBS_CONCAT_(kgq_obs_span_, __LINE__)(name)

#else  // !defined(KGQ_OBS_ENABLED)

#define KGQ_OBS_ON() (false)
#define KGQ_COUNTER_ADD(name, delta) ((void)0)
#define KGQ_COUNTER_INC(name) ((void)0)
#define KGQ_GAUGE_SET(name, value) ((void)0)
#define KGQ_HISTOGRAM_RECORD(name, value) ((void)0)
#define KGQ_SPAN(name) ((void)0)

#endif  // KGQ_OBS_ENABLED

#endif  // KGQ_OBS_OBS_H_
