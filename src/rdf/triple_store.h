#ifndef KGQ_RDF_TRIPLE_STORE_H_
#define KGQ_RDF_TRIPLE_STORE_H_

#include <compare>
#include <optional>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "util/interner.h"

namespace kgq {

/// An RDF triple (s, p, o): an edge from s to o labeled p. As the paper
/// notes, RDF replaces identified edges by triples — a *set*, so
/// duplicate assertions collapse and there are no edge ids.
struct Triple {
  ConstId s;
  ConstId p;
  ConstId o;
  auto operator<=>(const Triple&) const = default;
};

/// Hash functor for unordered containers of triples.
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.s;
    h = h * 0x9E3779B97F4A7C15ull + t.p;
    h = h * 0x9E3779B97F4A7C15ull + t.o;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

/// In-memory RDF graph with the three classic permutation indexes
/// (SPO, POS, OSP), each a sorted vector rebuilt lazily after inserts.
/// Every pattern with any subset of {s,p,o} bound is answered by a
/// binary-searched range scan over the best-matching index.
class TripleStore {
 public:
  TripleStore() = default;

  /// Inserts the triple (interning the terms); returns false if it was
  /// already present.
  bool Insert(std::string_view s, std::string_view p, std::string_view o);
  /// Id-level insert; ids must come from dict().
  bool InsertIds(ConstId s, ConstId p, ConstId o);

  /// True if the exact triple is present.
  bool Contains(std::string_view s, std::string_view p,
                std::string_view o) const;

  size_t size() const { return set_.size(); }

  /// All triples matching a pattern; nullopt = wildcard. The result is
  /// in the iteration order of the chosen index.
  std::vector<Triple> Match(std::optional<ConstId> s,
                            std::optional<ConstId> p,
                            std::optional<ConstId> o) const;

  /// String-level pattern matching convenience; empty string = wildcard.
  /// Unknown constants yield an empty result (they cannot match).
  std::vector<Triple> MatchStrings(std::string_view s, std::string_view p,
                                   std::string_view o) const;

  /// All triples in SPO order.
  const std::vector<Triple>& AllTriples() const;

  Interner& dict() { return dict_; }
  const Interner& dict() const { return dict_; }

 private:
  void EnsureIndexes() const;

  Interner dict_;
  std::unordered_set<Triple, TripleHash> set_;  // Dedup + live storage.
  mutable std::vector<Triple> spo_;  // Sorted (s,p,o).
  mutable std::vector<Triple> pos_;  // Sorted by (p,o,s).
  mutable std::vector<Triple> osp_;  // Sorted by (o,s,p).
  mutable bool dirty_ = true;
};

}  // namespace kgq

#endif  // KGQ_RDF_TRIPLE_STORE_H_
