#ifndef KGQ_RDF_RDFS_H_
#define KGQ_RDF_RDFS_H_

#include <string>

#include "rdf/triple_store.h"

namespace kgq {

/// Vocabulary terms driving the entailment rules (defaults are compact
/// qnames; swap in full IRIs when loading real RDF).
struct RdfsVocabulary {
  std::string type = "rdf:type";
  std::string sub_class_of = "rdfs:subClassOf";
  std::string sub_property_of = "rdfs:subPropertyOf";
  std::string domain = "rdfs:domain";
  std::string range = "rdfs:range";
};

/// Forward-chaining RDFS materialization — the "knowledge graphs
/// *produce* knowledge" capability of Section 2.3, in its most classic
/// form. Applies the core RDFS entailment rules to a fixpoint, adding
/// the derived triples to the store:
///
///   rdfs5  (p subPropertyOf q), (q subPropertyOf r) → (p subPropertyOf r)
///   rdfs7  (x p y), (p subPropertyOf q)             → (x q y)
///   rdfs11 (C subClassOf D), (D subClassOf E)       → (C subClassOf E)
///   rdfs9  (x type C), (C subClassOf D)             → (x type D)
///   rdfs2  (x p y), (p domain C)                    → (x type C)
///   rdfs3  (x p y), (p range C)                     → (y type C)
///
/// Returns the number of newly derived triples. Terminates: the derived
/// triples only use terms already present, so the closure is finite.
size_t MaterializeRdfs(TripleStore* store, const RdfsVocabulary& vocab = {});

}  // namespace kgq

#endif  // KGQ_RDF_RDFS_H_
