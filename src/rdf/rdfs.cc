#include "rdf/rdfs.h"

#include <vector>

namespace kgq {

size_t MaterializeRdfs(TripleStore* store, const RdfsVocabulary& vocab) {
  ConstId type = store->dict().Intern(vocab.type);
  ConstId sub_class = store->dict().Intern(vocab.sub_class_of);
  ConstId sub_prop = store->dict().Intern(vocab.sub_property_of);
  ConstId domain = store->dict().Intern(vocab.domain);
  ConstId range = store->dict().Intern(vocab.range);

  size_t derived = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Triple> fresh;

    // rdfs5 / rdfs11: transitivity of the two hierarchies.
    for (ConstId pred : {sub_prop, sub_class}) {
      for (const Triple& ab : store->Match(std::nullopt, pred,
                                           std::nullopt)) {
        for (const Triple& bc : store->Match(ab.o, pred, std::nullopt)) {
          fresh.push_back(Triple{ab.s, pred, bc.o});
        }
      }
    }

    // rdfs7: property inheritance.
    for (const Triple& sp : store->Match(std::nullopt, sub_prop,
                                         std::nullopt)) {
      for (const Triple& use : store->Match(std::nullopt, sp.s,
                                            std::nullopt)) {
        fresh.push_back(Triple{use.s, sp.o, use.o});
      }
    }

    // rdfs9: type inheritance along subClassOf.
    for (const Triple& sc : store->Match(std::nullopt, sub_class,
                                         std::nullopt)) {
      for (const Triple& inst : store->Match(std::nullopt, type, sc.s)) {
        fresh.push_back(Triple{inst.s, type, sc.o});
      }
    }

    // rdfs2 / rdfs3: domain and range typing.
    for (const Triple& dom : store->Match(std::nullopt, domain,
                                          std::nullopt)) {
      for (const Triple& use : store->Match(std::nullopt, dom.s,
                                            std::nullopt)) {
        fresh.push_back(Triple{use.s, type, dom.o});
      }
    }
    for (const Triple& rng : store->Match(std::nullopt, range,
                                          std::nullopt)) {
      for (const Triple& use : store->Match(std::nullopt, rng.s,
                                            std::nullopt)) {
        fresh.push_back(Triple{use.o, type, rng.o});
      }
    }

    for (const Triple& t : fresh) {
      if (store->InsertIds(t.s, t.p, t.o)) {
        ++derived;
        changed = true;
      }
    }
  }
  return derived;
}

}  // namespace kgq
