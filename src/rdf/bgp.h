#ifndef KGQ_RDF_BGP_H_
#define KGQ_RDF_BGP_H_

#include <map>
#include <string>
#include <vector>

#include "plan/ir.h"
#include "plan/optimizer.h"
#include "rdf/triple_store.h"
#include "rpq/regex.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace kgq {

class RdfGraphView;

/// A term of a triple pattern: a constant or a variable ("?x" style —
/// the leading '?' is stripped at construction).
struct Term {
  bool is_var = false;
  std::string text;  ///< Variable name (without '?') or constant.

  static Term Var(std::string name) { return Term{true, std::move(name)}; }
  static Term Const(std::string value) {
    return Term{false, std::move(value)};
  }
};

/// One SPARQL-style triple pattern. When `path` is set the pattern is a
/// SPARQL 1.1 *property path*: it matches (s, o) pairs connected by some
/// path conforming to the regular expression (existential semantics over
/// the RDF graph; the predicate term is ignored).
struct TriplePattern {
  Term s;
  Term p;
  Term o;
  RegexPtr path;  ///< Null for plain triple patterns.
};

/// A solution mapping: variable name → constant id (into store.dict()).
using Binding = std::map<std::string, ConstId>;

/// Evaluates a basic graph pattern (conjunction of triple patterns, the
/// core of SPARQL — reference [38] of the paper) by index-nested-loop
/// join, most-selective-pattern-first. Property-path patterns are
/// evaluated through the RPQ engine (pair semantics over an
/// RdfGraphView). Returns the distinct solution mappings over all
/// variables in the pattern.
Result<std::vector<Binding>> EvalBgp(
    const TripleStore& store, const std::vector<TriplePattern>& patterns);

/// Lowers a BGP to the shared logical IR (plan/ir.h) over `view`'s node
/// space: every plain pattern becomes a PathAtom with the single-label
/// regex ℓ (which the optimizer compiles to an EdgeScan), every property
/// path keeps its regex; constants become fresh `$cN` variables bound to
/// their node ids (a constant absent from the graph binds to kNoNode —
/// the uniform "no match" encoding). The projection is the sorted set of
/// user variables. Returns Unsupported for variable predicates (the
/// store-index join of EvalBgp has no IR counterpart) and InvalidArgument
/// for an empty pattern list.
Result<ConjunctiveQuery> CompileBgp(const std::vector<TriplePattern>& patterns,
                                    const RdfGraphView& view);

/// Knobs for planned BGP evaluation.
struct BgpPlanOptions {
  ParallelOptions parallel;
  /// Build a predicate-labeled CSR snapshot of the view and hand it to
  /// planner + executor (RdfGraphView::Snapshot).
  bool use_snapshot = true;
  PlannerOptions planner;
};

/// Plans and executes the BGP through the unified operators, then maps
/// rows back to solution Bindings (sorted, distinct — exactly EvalBgp's
/// output). Patterns with variable predicates fall back to EvalBgp.
/// An all-constant pattern set yields EvalBgp's convention: one empty
/// binding if the pattern holds, none otherwise.
Result<std::vector<Binding>> EvalBgpPlanned(
    const TripleStore& store, const std::vector<TriplePattern>& patterns,
    const BgpPlanOptions& options = {});

/// Parses "?x rides ?y . ?y label bus" into patterns. Terms are
/// whitespace-separated; '?'-prefixed terms are variables; patterns are
/// separated by '.'; constants with spaces can be "quoted". A predicate
/// wrapped in parentheses is a property path in the Section 4 regex
/// grammar: "?x (rides/rides^-) ?y".
Result<std::vector<TriplePattern>> ParseBgp(const std::string& text);

}  // namespace kgq

#endif  // KGQ_RDF_BGP_H_
