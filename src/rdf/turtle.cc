#include "rdf/turtle.h"

#include <map>
#include <vector>

namespace kgq {
namespace {

struct Token {
  std::string text;
  bool quoted = false;  // Quoted literals and <IRIs> bypass expansion.
  bool end = false;     // The '.' statement terminator.
};

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {  // Comment to end of line.
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '.') {
      out.push_back({".", false, true});
      ++i;
      continue;
    }
    if (c == '"') {
      std::string token;
      ++i;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size()) {
          token.push_back(text[i + 1]);
          i += 2;
        } else if (text[i] == '"') {
          closed = true;
          ++i;
          break;
        } else {
          token.push_back(text[i++]);
        }
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      out.push_back({std::move(token), true, false});
      continue;
    }
    if (c == '<') {
      std::string token;
      ++i;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '>') {
          closed = true;
          ++i;
          break;
        }
        token.push_back(text[i++]);
      }
      if (!closed) return Status::ParseError("unterminated IRI");
      out.push_back({std::move(token), true, false});
      continue;
    }
    std::string token;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t' &&
           text[i] != '\n' && text[i] != '\r' && text[i] != '#') {
      token.push_back(text[i++]);
    }
    // A trailing '.' after a bare token ends the statement ("foo.").
    bool ends = false;
    if (token.size() > 1 && token.back() == '.') {
      token.pop_back();
      ends = true;
    }
    out.push_back({std::move(token), false, false});
    if (ends) out.push_back({".", false, true});
  }
  return out;
}

}  // namespace

Result<size_t> LoadTurtle(const std::string& text, TripleStore* store) {
  KGQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  std::map<std::string, std::string> prefixes;
  size_t inserted = 0;

  auto expand = [&](const Token& t) -> Result<std::string> {
    if (t.quoted) return t.text;
    if (t.text == "a") return std::string(kRdfTypeIri);
    size_t colon = t.text.find(':');
    if (colon != std::string::npos) {
      std::string prefix = t.text.substr(0, colon);
      auto it = prefixes.find(prefix);
      // Unknown prefixes leave the token opaque ("rdf:type" et al. are
      // perfectly good constants for Turtle-lite documents that never
      // declare prefixes).
      if (it != prefixes.end()) {
        return it->second + t.text.substr(colon + 1);
      }
    }
    return t.text;
  };

  size_t i = 0;
  while (i < tokens.size()) {
    if (tokens[i].end) {  // Stray terminator.
      ++i;
      continue;
    }
    if (!tokens[i].quoted && tokens[i].text == "@prefix") {
      if (i + 3 >= tokens.size() || !tokens[i + 3].end) {
        return Status::ParseError("malformed @prefix declaration");
      }
      std::string name = tokens[i + 1].text;
      if (!name.empty() && name.back() == ':') name.pop_back();
      prefixes[name] = tokens[i + 2].text;
      i += 4;
      continue;
    }
    if (i + 3 >= tokens.size() || !tokens[i + 3].end) {
      return Status::ParseError(
          "expected 'subject predicate object .' near token '" +
          tokens[i].text + "'");
    }
    KGQ_ASSIGN_OR_RETURN(std::string s, expand(tokens[i]));
    KGQ_ASSIGN_OR_RETURN(std::string p, expand(tokens[i + 1]));
    KGQ_ASSIGN_OR_RETURN(std::string o, expand(tokens[i + 2]));
    if (store->Insert(s, p, o)) ++inserted;
    i += 4;
  }
  return inserted;
}

std::string SaveTurtle(const TripleStore& store) {
  auto quote_if_needed = [](const std::string& s) {
    bool needs = s.empty();
    for (char c : s) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '.' || c == '"' ||
          c == '#' || c == '<' || c == ':') {
        needs = true;
        break;
      }
    }
    if (!needs) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  };

  std::string out;
  for (const Triple& t : store.AllTriples()) {
    out += quote_if_needed(store.dict().Lookup(t.s)) + " " +
           quote_if_needed(store.dict().Lookup(t.p)) + " " +
           quote_if_needed(store.dict().Lookup(t.o)) + " .\n";
  }
  return out;
}

}  // namespace kgq
