#include "rdf/convert.h"

#include <map>
#include <string>

namespace kgq {

TripleStore LabeledToRdf(const LabeledGraph& graph) {
  TripleStore store;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    store.Insert("n" + std::to_string(n), kNodeLabelPredicate,
                 graph.NodeLabelString(n));
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    store.Insert("n" + std::to_string(graph.EdgeSource(e)),
                 graph.EdgeLabelString(e),
                 "n" + std::to_string(graph.EdgeTarget(e)));
  }
  return store;
}

Result<LabeledGraph> RdfToLabeled(const TripleStore& store) {
  std::optional<ConstId> label_pred = store.dict().Find(kNodeLabelPredicate);
  if (!label_pred.has_value()) {
    return Status::InvalidArgument(
        "store has no kgq:label triples; not a LabeledToRdf encoding");
  }

  LabeledGraph out;
  std::map<ConstId, NodeId> node_of;  // RDF term → node id.
  for (const Triple& t : store.Match(std::nullopt, *label_pred,
                                     std::nullopt)) {
    auto [it, inserted] = node_of.emplace(t.s, 0);
    if (!inserted) {
      return Status::InvalidArgument(
          "term '" + store.dict().Lookup(t.s) + "' has multiple labels");
    }
    it->second = out.AddNode(store.dict().Lookup(t.o));
  }

  for (const Triple& t : store.AllTriples()) {
    if (t.p == *label_pred) continue;
    auto s_it = node_of.find(t.s);
    auto o_it = node_of.find(t.o);
    if (s_it == node_of.end() || o_it == node_of.end()) {
      return Status::InvalidArgument(
          "edge triple references an unlabeled term ('" +
          store.dict().Lookup(t.s) + "' " + store.dict().Lookup(t.p) +
          " '" + store.dict().Lookup(t.o) + "')");
    }
    KGQ_RETURN_IF_ERROR(out.AddEdge(s_it->second, o_it->second,
                                    store.dict().Lookup(t.p))
                            .status());
  }
  return out;
}

}  // namespace kgq
