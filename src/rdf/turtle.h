#ifndef KGQ_RDF_TURTLE_H_
#define KGQ_RDF_TURTLE_H_

#include <string>

#include "rdf/triple_store.h"
#include "util/result.h"

namespace kgq {

/// The full IRI that the Turtle shorthand `a` expands to.
inline constexpr char kRdfTypeIri[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Loads a Turtle-like document into `store`. Supported subset:
///   * one `subject predicate object .` statement per sentence,
///     tokens separated by whitespace, statements by '.',
///   * `"quoted literals"` (with \" and \\ escapes),
///   * `<IRIs>` (angle brackets stripped; the paper's universal-
///     interpretation point: the same IRI in two documents is the same
///     constant),
///   * `@prefix name: <iri> .` declarations and `name:local` qnames,
///   * `#` line comments,
///   * `a` as shorthand for rdf:type.
/// Returns the number of (new) triples inserted.
Result<size_t> LoadTurtle(const std::string& text, TripleStore* store);

/// Serializes every triple as `term term term .` per line, quoting terms
/// that contain whitespace or '.' characters. LoadTurtle(SaveTurtle(s))
/// reproduces the store.
std::string SaveTurtle(const TripleStore& store);

}  // namespace kgq

#endif  // KGQ_RDF_TURTLE_H_
