#include "rdf/reify.h"

#include <algorithm>
#include <map>
#include <string>

#include "rdf/convert.h"

namespace kgq {
namespace {

constexpr char kSourcePred[] = "kgq:source";
constexpr char kTargetPred[] = "kgq:target";
constexpr char kPropPrefix[] = "kgq:prop:";

std::string NodeName(NodeId n) { return "n" + std::to_string(n); }
std::string EdgeName(EdgeId e) { return "e" + std::to_string(e); }

}  // namespace

TripleStore PropertyToRdf(const PropertyGraph& graph) {
  TripleStore store;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    store.Insert(NodeName(n), kNodeLabelPredicate, graph.NodeLabelString(n));
    for (const auto& [name, value] : graph.NodeProperties(n).entries()) {
      store.Insert(NodeName(n),
                   std::string(kPropPrefix) + graph.dict().Lookup(name),
                   graph.dict().Lookup(value));
    }
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    store.Insert(EdgeName(e), kSourcePred, NodeName(graph.EdgeSource(e)));
    store.Insert(EdgeName(e), kTargetPred, NodeName(graph.EdgeTarget(e)));
    store.Insert(EdgeName(e), kNodeLabelPredicate,
                 graph.EdgeLabelString(e));
    for (const auto& [name, value] : graph.EdgeProperties(e).entries()) {
      store.Insert(EdgeName(e),
                   std::string(kPropPrefix) + graph.dict().Lookup(name),
                   graph.dict().Lookup(value));
    }
  }
  return store;
}

Result<PropertyGraph> RdfToProperty(const TripleStore& store) {
  const Interner& dict = store.dict();
  std::optional<ConstId> label_pred = dict.Find(kNodeLabelPredicate);
  if (!label_pred.has_value()) {
    return Status::InvalidArgument("store has no kgq:label triples");
  }
  std::optional<ConstId> source_pred = dict.Find(kSourcePred);
  std::optional<ConstId> target_pred = dict.Find(kTargetPred);

  // Partition subjects into edge resources (have kgq:source) and nodes.
  std::map<std::string, std::string> edge_source, edge_target;
  if (source_pred.has_value()) {
    for (const Triple& t :
         store.Match(std::nullopt, *source_pred, std::nullopt)) {
      edge_source[dict.Lookup(t.s)] = dict.Lookup(t.o);
    }
  }
  if (target_pred.has_value()) {
    for (const Triple& t :
         store.Match(std::nullopt, *target_pred, std::nullopt)) {
      edge_target[dict.Lookup(t.s)] = dict.Lookup(t.o);
    }
  }

  PropertyGraph out;
  std::map<std::string, NodeId> node_of;
  std::map<std::string, std::string> node_label, edge_label;
  for (const Triple& t :
       store.Match(std::nullopt, *label_pred, std::nullopt)) {
    std::string subject = dict.Lookup(t.s);
    if (edge_source.count(subject)) {
      if (!edge_label.emplace(subject, dict.Lookup(t.o)).second) {
        return Status::InvalidArgument("edge '" + subject +
                                       "' has multiple labels");
      }
    } else {
      if (!node_label.emplace(subject, dict.Lookup(t.o)).second) {
        return Status::InvalidArgument("node '" + subject +
                                       "' has multiple labels");
      }
    }
  }

  // Nodes in name order (names embed original indexes, so this is the
  // original order for PropertyToRdf output).
  auto numeric_order = [](const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  };
  std::vector<std::string> node_names;
  for (const auto& [name, label] : node_label) node_names.push_back(name);
  std::sort(node_names.begin(), node_names.end(), numeric_order);
  for (const std::string& name : node_names) {
    node_of[name] = out.AddNode(node_label[name]);
  }

  std::vector<std::string> edge_names;
  for (const auto& [name, source] : edge_source) {
    if (!edge_target.count(name)) {
      return Status::InvalidArgument("edge '" + name + "' has no target");
    }
    if (!edge_label.count(name)) {
      return Status::InvalidArgument("edge '" + name + "' has no label");
    }
    edge_names.push_back(name);
  }
  std::sort(edge_names.begin(), edge_names.end(), numeric_order);

  std::map<std::string, EdgeId> edge_of;
  for (const std::string& name : edge_names) {
    auto s = node_of.find(edge_source[name]);
    auto t = node_of.find(edge_target[name]);
    if (s == node_of.end() || t == node_of.end()) {
      return Status::InvalidArgument("edge '" + name +
                                     "' references an unknown node");
    }
    KGQ_ASSIGN_OR_RETURN(EdgeId e,
                         out.AddEdge(s->second, t->second,
                                     edge_label[name]));
    edge_of[name] = e;
  }

  // Properties: kgq:prop:<name> triples on either kind of subject.
  const std::string prefix = kPropPrefix;
  for (const Triple& t : store.AllTriples()) {
    const std::string& pred = dict.Lookup(t.p);
    if (pred.rfind(prefix, 0) != 0) continue;
    std::string prop = pred.substr(prefix.size());
    std::string subject = dict.Lookup(t.s);
    if (auto it = node_of.find(subject); it != node_of.end()) {
      out.SetNodeProperty(it->second, prop, dict.Lookup(t.o));
    } else if (auto jt = edge_of.find(subject); jt != edge_of.end()) {
      out.SetEdgeProperty(jt->second, prop, dict.Lookup(t.o));
    } else {
      return Status::InvalidArgument("property on unknown subject '" +
                                     subject + "'");
    }
  }
  return out;
}

}  // namespace kgq
