#include "rdf/rdf_view.h"

#include <cassert>

#include "rdf/convert.h"
#include "rdf/turtle.h"

namespace kgq {

RdfGraphView::RdfGraphView(const TripleStore& store,
                           const RdfsVocabulary& vocab)
    : store_(store) {
  for (const std::string& pred :
       {vocab.type, std::string(kRdfTypeIri),
        std::string(kNodeLabelPredicate)}) {
    std::optional<ConstId> id = store_.dict().Find(pred);
    if (id.has_value()) label_preds_.push_back(*id);
  }

  auto node_for = [&](ConstId term) {
    auto [it, inserted] =
        node_of_.emplace(term, static_cast<NodeId>(node_terms_.size()));
    if (inserted) {
      node_terms_.push_back(term);
      graph_.AddNode();
    }
    return it->second;
  };

  for (const Triple& t : store_.AllTriples()) {
    NodeId s = node_for(t.s);
    NodeId o = node_for(t.o);
    auto added = graph_.AddEdge(s, o);
    assert(added.ok());
    (void)added;
    edge_preds_.push_back(t.p);
  }
}

bool RdfGraphView::NodeLabelIs(NodeId n, std::string_view label) const {
  std::optional<ConstId> label_id = store_.dict().Find(label);
  if (!label_id.has_value()) return false;
  ConstId term = node_terms_[n];
  for (ConstId pred : label_preds_) {
    if (!store_.Match(term, pred, *label_id).empty()) return true;
  }
  return false;
}

bool RdfGraphView::EdgeLabelIs(EdgeId e, std::string_view label) const {
  std::optional<ConstId> label_id = store_.dict().Find(label);
  return label_id.has_value() && edge_preds_[e] == *label_id;
}

CsrSnapshot RdfGraphView::Snapshot() const {
  return CsrSnapshot::FromLabeledEdges(graph_, [this](EdgeId e) {
    return store_.dict().Lookup(edge_preds_[e]);
  });
}

NodeId RdfGraphView::NodeOf(std::string_view term) const {
  std::optional<ConstId> id = store_.dict().Find(term);
  if (!id.has_value()) return kNoNode;
  auto it = node_of_.find(*id);
  return it == node_of_.end() ? kNoNode : it->second;
}

}  // namespace kgq
