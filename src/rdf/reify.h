#ifndef KGQ_RDF_REIFY_H_
#define KGQ_RDF_REIFY_H_

#include "graph/property_graph.h"
#include "rdf/triple_store.h"
#include "util/result.h"

namespace kgq {

/// Property-graph ↔ RDF interoperability by *edge reification* — the
/// classic answer to "RDF triples have no identity or attributes"
/// (Section 3 contrasts exactly these two models). Every edge becomes a
/// statement resource:
///
///   e17 kgq:source  n3 .        e17 kgq:label  rides .
///   e17 kgq:target  n5 .        e17 kgq:prop:date "3/4/21" .
///
/// and node data becomes
///
///   n3 kgq:label person .       n3 kgq:prop:name "Juan" .
///
/// Unlike the plain LabeledToRdf encoding, this one is *lossless*:
/// parallel edges keep distinct statement resources and properties
/// survive. RdfToProperty inverts it exactly (modulo node/edge ids,
/// which are regenerated densely in encounter order of the reified
/// names — stable because our names embed the original indexes).
TripleStore PropertyToRdf(const PropertyGraph& graph);

/// Inverse of PropertyToRdf. Fails with InvalidArgument on stores that
/// do not follow the reified layout.
Result<PropertyGraph> RdfToProperty(const TripleStore& store);

}  // namespace kgq

#endif  // KGQ_RDF_REIFY_H_
