#include "rdf/triple_store.h"

#include <algorithm>

namespace kgq {
namespace {

bool PosLess(const Triple& a, const Triple& b) {
  if (a.p != b.p) return a.p < b.p;
  if (a.o != b.o) return a.o < b.o;
  return a.s < b.s;
}

bool OspLess(const Triple& a, const Triple& b) {
  if (a.o != b.o) return a.o < b.o;
  if (a.s != b.s) return a.s < b.s;
  return a.p < b.p;
}

}  // namespace

bool TripleStore::Insert(std::string_view s, std::string_view p,
                         std::string_view o) {
  return InsertIds(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

bool TripleStore::InsertIds(ConstId s, ConstId p, ConstId o) {
  bool inserted = set_.insert(Triple{s, p, o}).second;
  if (inserted) dirty_ = true;
  return inserted;
}

bool TripleStore::Contains(std::string_view s, std::string_view p,
                           std::string_view o) const {
  std::optional<ConstId> si = dict_.Find(s);
  std::optional<ConstId> pi = dict_.Find(p);
  std::optional<ConstId> oi = dict_.Find(o);
  if (!si || !pi || !oi) return false;
  return set_.count(Triple{*si, *pi, *oi}) > 0;
}

void TripleStore::EnsureIndexes() const {
  if (!dirty_) return;
  spo_.assign(set_.begin(), set_.end());
  std::sort(spo_.begin(), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess);
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess);
  dirty_ = false;
}

std::vector<Triple> TripleStore::Match(std::optional<ConstId> s,
                                       std::optional<ConstId> p,
                                       std::optional<ConstId> o) const {
  EnsureIndexes();
  std::vector<Triple> out;
  auto emit_if = [&](const Triple& t) {
    if (s && t.s != *s) return;
    if (p && t.p != *p) return;
    if (o && t.o != *o) return;
    out.push_back(t);
  };

  if (s.has_value()) {
    // SPO range scan on s (tightened to (s, p) when p is bound too).
    auto begin = std::lower_bound(spo_.begin(), spo_.end(),
                                  Triple{*s, p.value_or(0), 0});
    for (auto it = begin; it != spo_.end() && it->s == *s; ++it) {
      if (p && it->p > *p) break;
      emit_if(*it);
    }
    return out;
  }
  if (p.has_value()) {
    auto begin = std::lower_bound(
        pos_.begin(), pos_.end(), Triple{0, *p, o.value_or(0)}, PosLess);
    for (auto it = begin; it != pos_.end() && it->p == *p; ++it) {
      emit_if(*it);
    }
    return out;
  }
  if (o.has_value()) {
    auto begin = std::lower_bound(osp_.begin(), osp_.end(),
                                  Triple{0, 0, *o}, OspLess);
    for (auto it = begin; it != osp_.end() && it->o == *o; ++it) {
      emit_if(*it);
    }
    return out;
  }
  return spo_;
}

std::vector<Triple> TripleStore::MatchStrings(std::string_view s,
                                              std::string_view p,
                                              std::string_view o) const {
  std::optional<ConstId> si, pi, oi;
  if (!s.empty()) {
    si = dict_.Find(s);
    if (!si) return {};
  }
  if (!p.empty()) {
    pi = dict_.Find(p);
    if (!pi) return {};
  }
  if (!o.empty()) {
    oi = dict_.Find(o);
    if (!oi) return {};
  }
  return Match(si, pi, oi);
}

const std::vector<Triple>& TripleStore::AllTriples() const {
  EnsureIndexes();
  return spo_;
}

}  // namespace kgq
