#include "rdf/bgp.h"

#include <algorithm>
#include <memory>
#include <set>
#include <tuple>

#include "pathalg/pairs.h"
#include "plan/exec.h"
#include "plan/stats.h"
#include "rdf/rdf_view.h"
#include "rpq/parser.h"
#include "rpq/path_nfa.h"

namespace kgq {
namespace {

/// Resolves a term under a partial binding: a bound slot (constant id)
/// or nullopt (still free).
std::optional<ConstId> Resolve(const Term& term, const Binding& binding,
                               const Interner& dict, bool* impossible) {
  if (term.is_var) {
    auto it = binding.find(term.text);
    if (it != binding.end()) return it->second;
    return std::nullopt;
  }
  std::optional<ConstId> id = dict.Find(term.text);
  if (!id.has_value()) *impossible = true;  // Unknown constant: no match.
  return id;
}

/// Number of slots a pattern leaves free under the current binding —
/// the greedy selectivity heuristic (fewer free slots first).
int FreeSlots(const TriplePattern& p, const std::set<std::string>& bound) {
  auto free = [&](const Term& t) {
    return t.is_var && bound.count(t.text) == 0 ? 1 : 0;
  };
  if (p.path != nullptr) return free(p.s) + free(p.o);
  return free(p.s) + free(p.p) + free(p.o);
}

/// Precomputed pair relation of one property-path pattern.
struct PathRelation {
  std::vector<Bitset> pairs;  // pairs[a].Test(b) over view node ids.
};

void Extend(const TripleStore& store, const RdfGraphView* view,
            const std::vector<PathRelation>& relations,
            const std::vector<TriplePattern>& patterns,
            std::vector<char>* used, const Binding& binding,
            std::vector<Binding>* out) {
  // Pick the unused pattern with the fewest free slots.
  std::set<std::string> bound;
  for (const auto& [var, id] : binding) bound.insert(var);
  int best = -1;
  int best_free = 4;
  for (size_t i = 0; i < patterns.size(); ++i) {
    if ((*used)[i]) continue;
    int f = FreeSlots(patterns[i], bound);
    if (f < best_free) {
      best_free = f;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    out->push_back(binding);
    return;
  }
  const TriplePattern& p = patterns[best];
  (*used)[best] = 1;

  if (p.path != nullptr) {
    // Property path: iterate the precomputed pair relation, filtered by
    // whatever s/o bindings already exist.
    const PathRelation& rel = relations[best];
    bool bad = false;
    std::optional<ConstId> s_const =
        Resolve(p.s, binding, store.dict(), &bad);
    std::optional<ConstId> o_const =
        Resolve(p.o, binding, store.dict(), &bad);
    if (!bad) {
      auto try_pair = [&](NodeId a, NodeId b) {
        Binding extended = binding;
        bool consistent = true;
        auto bind = [&](const Term& term, ConstId value) {
          if (!term.is_var) return;
          auto [it, inserted] = extended.emplace(term.text, value);
          if (!inserted && it->second != value) consistent = false;
        };
        ConstId a_term = *store.dict().Find(view->TermOf(a));
        ConstId b_term = *store.dict().Find(view->TermOf(b));
        bind(p.s, a_term);
        bind(p.o, b_term);
        if (consistent) {
          Extend(store, view, relations, patterns, used, extended, out);
        }
      };
      if (s_const.has_value()) {
        NodeId a = view->NodeOf(store.dict().Lookup(*s_const));
        if (a != kNoNode) {
          rel.pairs[a].ForEach([&](size_t b) {
            if (o_const.has_value()) {
              ConstId b_term =
                  *store.dict().Find(view->TermOf(static_cast<NodeId>(b)));
              if (b_term != *o_const) return;
            }
            try_pair(a, static_cast<NodeId>(b));
          });
        }
      } else {
        for (NodeId a = 0; a < rel.pairs.size(); ++a) {
          rel.pairs[a].ForEach([&](size_t b) {
            if (o_const.has_value()) {
              ConstId b_term =
                  *store.dict().Find(view->TermOf(static_cast<NodeId>(b)));
              if (b_term != *o_const) return;
            }
            try_pair(a, static_cast<NodeId>(b));
          });
        }
      }
    }
    (*used)[best] = 0;
    return;
  }

  bool impossible = false;
  std::optional<ConstId> s = Resolve(p.s, binding, store.dict(), &impossible);
  std::optional<ConstId> pp = Resolve(p.p, binding, store.dict(), &impossible);
  std::optional<ConstId> o = Resolve(p.o, binding, store.dict(), &impossible);
  if (!impossible) {
    for (const Triple& t : store.Match(s, pp, o)) {  // Plain pattern.
      Binding extended = binding;
      bool consistent = true;
      auto bind = [&](const Term& term, ConstId value) {
        if (!term.is_var) return;
        auto [it, inserted] = extended.emplace(term.text, value);
        if (!inserted && it->second != value) consistent = false;
      };
      bind(p.s, t.s);
      bind(p.p, t.p);
      bind(p.o, t.o);
      // Repeated variables within one pattern (e.g. ?x p ?x) need the
      // post-bind consistency check.
      if (consistent) {
        Extend(store, view, relations, patterns, used, extended, out);
      }
    }
  }
  (*used)[best] = 0;
}

}  // namespace

Result<std::vector<Binding>> EvalBgp(
    const TripleStore& store, const std::vector<TriplePattern>& patterns) {
  if (patterns.empty()) {
    return Status::InvalidArgument("empty basic graph pattern");
  }
  // Property paths run over a graph view of the store; build it (and the
  // per-pattern pair relations) once.
  bool any_path = false;
  for (const TriplePattern& p : patterns) any_path |= p.path != nullptr;
  std::unique_ptr<RdfGraphView> view;
  std::vector<PathRelation> relations(patterns.size());
  if (any_path) {
    view = std::make_unique<RdfGraphView>(store);
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].path == nullptr) continue;
      KGQ_ASSIGN_OR_RETURN(PathNfa nfa,
                           PathNfa::Compile(*view, *patterns[i].path));
      relations[i].pairs = AllPairs(nfa);
    }
  }

  std::vector<Binding> out;
  std::vector<char> used(patterns.size(), 0);
  Extend(store, view.get(), relations, patterns, &used, {}, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<ConjunctiveQuery> CompileBgp(const std::vector<TriplePattern>& patterns,
                                    const RdfGraphView& view) {
  if (patterns.empty()) {
    return Status::InvalidArgument("empty basic graph pattern");
  }
  std::set<std::string> user_vars;
  for (const TriplePattern& p : patterns) {
    if (p.s.is_var) user_vars.insert(p.s.text);
    if (p.o.is_var) user_vars.insert(p.o.text);
  }

  ConjunctiveQuery cq;
  size_t next_const = 0;
  auto var_of = [&](const Term& t) -> std::string {
    if (t.is_var) return t.text;
    std::string name = "$c" + std::to_string(next_const++);
    while (user_vars.count(name) > 0) name += "_";
    cq.bound[name] = view.NodeOf(t.text);  // kNoNode → empty result.
    return name;
  };
  for (const TriplePattern& p : patterns) {
    RegexPtr path = p.path;
    if (path == nullptr) {
      if (p.p.is_var) {
        return Status::Unsupported(
            "variable predicates need the store-index evaluator");
      }
      path = Regex::EdgeLabel(p.p.text);
    }
    cq.atoms.push_back({var_of(p.s), var_of(p.o), std::move(path)});
  }
  cq.projection.assign(user_vars.begin(), user_vars.end());
  return cq;
}

Result<std::vector<Binding>> EvalBgpPlanned(
    const TripleStore& store, const std::vector<TriplePattern>& patterns,
    const BgpPlanOptions& options) {
  RdfGraphView view(store);
  Result<ConjunctiveQuery> cq = CompileBgp(patterns, view);
  if (!cq.ok()) {
    if (cq.status().code() == StatusCode::kUnsupported) {
      return EvalBgp(store, patterns);  // Documented fallback.
    }
    return cq.status();
  }

  // All-constant pattern sets have no user variable to project; project
  // one synthetic binding and collapse the answer to "holds or not".
  bool ask_query = cq->projection.empty();
  if (ask_query) cq->projection.push_back(cq->bound.begin()->first);

  CsrSnapshot snapshot;
  const CsrSnapshot* snap = nullptr;
  if (options.use_snapshot) {
    snapshot = view.Snapshot();
    snap = &snapshot;
  }
  GraphStats stats = GraphStats::From(&view, snap);
  KGQ_ASSIGN_OR_RETURN(LogicalOpPtr plan,
                       PlanQuery(*cq, stats, options.planner));
  ExecOptions eopts;
  eopts.parallel = options.parallel;
  eopts.snapshot = snap;
  KGQ_ASSIGN_OR_RETURN(RowSet rows, ExecutePlan(view, *plan, eopts));

  std::vector<Binding> out;
  if (ask_query) {
    if (!rows.rows.empty()) out.push_back({});
    return out;
  }
  out.reserve(rows.rows.size());
  for (const std::vector<NodeId>& row : rows.rows) {
    Binding b;
    for (size_t i = 0; i < rows.schema.size(); ++i) {
      b[rows.schema[i]] = *store.dict().Find(view.TermOf(row[i]));
    }
    out.push_back(std::move(b));
  }
  // Rows are sorted by node id; bindings sort by constant id. Re-sort.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<TriplePattern>> ParseBgp(const std::string& text) {
  std::vector<std::vector<Term>> groups(1);
  // (group, term position, parsed path) for parenthesized predicates.
  std::vector<std::tuple<size_t, size_t, RegexPtr>> paths;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '.') {
      if (!groups.back().empty()) groups.emplace_back();
      ++i;
      continue;
    }
    std::string token;
    if (c == '(') {
      // Parenthesized property path; capture to the matching ')'.
      size_t depth = 0;
      do {
        if (text[i] == '(') ++depth;
        if (text[i] == ')') --depth;
        token.push_back(text[i++]);
      } while (i < text.size() && depth > 0);
      if (depth != 0) {
        return Status::ParseError("unterminated property path");
      }
      Result<RegexPtr> path = ParseRegex(token);
      if (!path.ok()) return path.status();
      Term term = Term::Const(std::move(token));
      groups.back().push_back(std::move(term));
      paths.emplace_back(groups.size() - 1, groups.back().size() - 1,
                         *path);
      continue;
    }
    if (c == '"') {
      ++i;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        token.push_back(text[i++]);
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      groups.back().push_back(Term::Const(std::move(token)));
      continue;
    }
    while (i < text.size() && text[i] != ' ' && text[i] != '\t' &&
           text[i] != '\n' && text[i] != '\r' && text[i] != '.') {
      token.push_back(text[i++]);
    }
    if (token[0] == '?') {
      if (token.size() == 1) return Status::ParseError("empty variable name");
      groups.back().push_back(Term::Var(token.substr(1)));
    } else {
      groups.back().push_back(Term::Const(std::move(token)));
    }
  }
  if (groups.back().empty()) groups.pop_back();
  if (groups.empty()) return Status::ParseError("empty basic graph pattern");

  std::vector<TriplePattern> out;
  for (const auto& g : groups) {
    if (g.size() != 3) {
      return Status::ParseError(
          "each pattern needs exactly 3 terms, got " +
          std::to_string(g.size()));
    }
    out.push_back(TriplePattern{g[0], g[1], g[2], nullptr});
  }
  for (const auto& [group, pos, path] : paths) {
    if (pos != 1) {
      return Status::ParseError(
          "property paths are only allowed in the predicate position");
    }
    out[group].path = path;
  }
  return out;
}

}  // namespace kgq
