#ifndef KGQ_RDF_RDF_VIEW_H_
#define KGQ_RDF_RDF_VIEW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr_snapshot.h"
#include "graph/graph_view.h"
#include "rdf/rdfs.h"
#include "rdf/triple_store.h"

namespace kgq {

/// GraphView over an RDF store, so the whole RPQ toolbox (evaluation,
/// counting, enumeration, FPRAS, bc_r) runs directly on triples — this
/// is SPARQL property paths on our substrate.
///
/// Construction takes a *snapshot*: every term occurring as subject or
/// object becomes a node, every triple an edge labeled by its predicate.
/// Node-label tests `?C` hold at n iff the store contains
/// (n, rdf:type, C) — compact or full-IRI form — or (n, kgq:label, C). Classes are nodes too (that's
/// RDF); property tests and feature tests are not part of this model.
/// Later inserts into the store are not reflected in the view.
class RdfGraphView final : public GraphView {
 public:
  /// The store must outlive the view.
  explicit RdfGraphView(const TripleStore& store,
                        const RdfsVocabulary& vocab = {});

  const Multigraph& topology() const override { return graph_; }
  bool NodeLabelIs(NodeId n, std::string_view label) const override;
  bool EdgeLabelIs(EdgeId e, std::string_view label) const override;

  /// The node for an RDF term; kNoNode if the term never occurs as
  /// subject or object.
  NodeId NodeOf(std::string_view term) const;

  /// The RDF term of a node.
  const std::string& TermOf(NodeId n) const {
    return store_.dict().Lookup(node_terms_[n]);
  }

  const TripleStore& store() const { return store_; }

  /// CSR snapshot of this view's topology with predicate-labeled edge
  /// partitions — feeds the query planner's cardinality estimator and
  /// the EdgeScan label-partition fast path.
  CsrSnapshot Snapshot() const;

 private:
  const TripleStore& store_;
  Multigraph graph_;
  std::vector<ConstId> node_terms_;          // NodeId → term.
  std::unordered_map<ConstId, NodeId> node_of_;
  std::vector<ConstId> edge_preds_;          // EdgeId → predicate.
  // Predicates whose triples define node "labels": the vocabulary's
  // type, the full rdf:type IRI (Turtle `a`), and kgq:label.
  std::vector<ConstId> label_preds_;
};

}  // namespace kgq

#endif  // KGQ_RDF_RDF_VIEW_H_
