#ifndef KGQ_RDF_CONVERT_H_
#define KGQ_RDF_CONVERT_H_

#include "graph/labeled_graph.h"
#include "rdf/triple_store.h"
#include "util/result.h"

namespace kgq {

/// The reserved predicate carrying node labels in the RDF encoding.
inline constexpr char kNodeLabelPredicate[] = "kgq:label";

/// Encodes a labeled graph as RDF per the paper's Section 3 remark:
/// every edge e with ρ(e) = (s, o) and λ(e) = p becomes the triple
/// (n_s, p, n_o), and every node label becomes (n, kgq:label, ℓ). Node
/// terms are "n<i>".
///
/// RDF is a set of *unidentified* triples, so parallel edges with equal
/// labels collapse — the round trip is lossy exactly where the models
/// differ (the tests pin this down).
TripleStore LabeledToRdf(const LabeledGraph& graph);

/// Decodes the encoding above. Fails with InvalidArgument if a subject/
/// object term lacks a kgq:label triple (i.e. the store was not produced
/// by LabeledToRdf-style encoding), or if a node has several labels.
Result<LabeledGraph> RdfToLabeled(const TripleStore& store);

}  // namespace kgq

#endif  // KGQ_RDF_CONVERT_H_
