#ifndef KGQ_SERVE_SERVER_H_
#define KGQ_SERVE_SERVER_H_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "obs/quantile.h"
#include "plan/optimizer.h"
#include "serve/delta_store.h"
#include "serve/protocol.h"
#include "serve/query_cache.h"
#include "serve/view_cache.h"
#include "util/result.h"

namespace kgq {
namespace serve {

/// Knobs of one Server instance.
struct ServerOptions {
  /// Query worker threads in ServeStream (writes always run on the
  /// dispatcher, in input order). At least 1.
  size_t workers = 4;
  /// Bounded admission queue: when this many queries are in flight the
  /// dispatcher blocks before admitting the next one (backpressure
  /// towards the client). At least 1.
  size_t queue_capacity = 128;
  /// ParallelOptions thread budget for a query that does not ask for
  /// one ("threads" absent or 0).
  size_t default_query_threads = 1;
  /// Upper bound on the per-query "threads" request field.
  size_t max_query_threads = 8;
  /// Plan/result cache entries; 0 disables caching.
  size_t cache_capacity = 1024;
  /// Planner configuration shared by every query.
  PlannerOptions planner;
  /// Slow-query log threshold in nanoseconds; 0 disables the log. When
  /// armed, every query computation also captures a profile tree (so
  /// slow-log lines can name their top operators), and any query whose
  /// latency reaches the threshold emits one JSON line to `slow_log`.
  uint64_t slow_query_ns = 0;
  /// Destination of slow-query log lines; nullptr means std::cerr.
  std::ostream* slow_log = nullptr;
};

/// The kgq-serve core: a DeltaStore plus the three query front-ends
/// compiled through the unified plan IR, a plan/result cache and a
/// bounded-queue concurrent executor.
///
/// Two execution surfaces share one request pipeline:
///
///  * HandleLine() — parse, apply/execute, render, synchronously. The
///    single-threaded replay path.
///  * ServeStream() — the production loop: the calling thread reads
///    jsonl requests, applies writes immediately (writes are serialized
///    in input order by construction) and admits queries — pinned to
///    the epoch current at admission and pre-resolved against the cache
///    — into a bounded queue drained by `workers` threads. Responses
///    are emitted strictly in input order through a reorder buffer, so
///    the byte stream is identical to HandleLine-ing the same input —
///    for any worker count. That equivalence is the gate bench_e14 and
///    tests/test_serve_concurrent.cc enforce.
///
/// Epoch semantics: a query runs against the snapshot current when the
/// dispatcher admitted it; a publish between admission and execution
/// does not retroactively move it. Writes never make a query torn or
/// blocked — readers hold their EpochSnapshot by shared_ptr.
///
/// obs: counters serve.requests / serve.errors, histogram
/// serve.latency_ns (admission → response, per request), gauge
/// serve.queue.depth (admitted, not yet completed queries), plus the
/// DeltaStore and QueryCache metrics (serve.epoch, serve.writes.*,
/// serve.publish.edges, serve.cache.*).
class Server {
 public:
  /// Defined in server.cc; public so the cache-free replay oracle
  /// (EvalServeQuery) and the compile helpers can share it.
  struct PreparedQuery;

  explicit Server(ServerOptions options = {});

  DeltaStore& store() { return store_; }
  QueryCache& cache() { return cache_; }
  const ServerOptions& options() const { return options_; }

  /// Publishes the pending writes as a new epoch and invalidates the
  /// query cache iff the published *content* changed (an empty publish
  /// bumps the epoch but keeps every cached answer) — what the
  /// "publish" request does; in-process clients should use this rather
  /// than store().Publish() so the cache stays in step.
  EpochPtr Publish();

  /// Parses one request line, executes it and renders the response —
  /// all on the calling thread. Never throws; malformed input yields a
  /// structured error response and leaves the store untouched.
  std::string HandleLine(const std::string& line);

  /// Executes a query/explain request against the current epoch,
  /// through the cache. Thread-safe; used by in-process clients (the
  /// bench's load generator).
  Result<QueryAnswer> ExecuteQuery(const Request& req);

  /// Same, pinned to an explicitly acquired epoch.
  Result<QueryAnswer> ExecuteQueryAt(const Request& req,
                                     const EpochPtr& snap);

  /// Reads jsonl requests from `in` until EOF and writes one response
  /// line per request to `out`, in input order. Runs the dispatcher on
  /// the calling thread and options().workers query workers.
  void ServeStream(std::istream& in, std::ostream& out);

  /// The "stats" payload: store/cache/write tallies (deterministic
  /// under admission ordering) plus exact latency quantiles.
  StatsBody BuildStats();
  /// The "metrics" payload: exact latency quantiles plus the full
  /// (compact) obs registry export.
  MetricsBody BuildMetrics();
  /// One rendered metrics line (no correlation id) — what the
  /// `--metrics-interval` exporter of kgq-serve emits periodically.
  std::string MetricsJson();

  /// The exact-latency reservoir behind stats/metrics quantiles. Every
  /// request's latency (the same observations as the serve.latency_ns
  /// histogram) is recorded here; tests recompute quantiles offline
  /// from Samples() and byte-compare them against served responses.
  const obs::QuantileReservoir& latency_reservoir() const {
    return latency_;
  }

 private:
  struct StreamState;

  /// Parse + canonicalize a query/explain request (no graph access).
  Result<PreparedQuery> Prepare(const Request& req) const;
  /// Cache-mediated execution of a prepared query at one epoch.
  Result<QueryAnswer> RunPrepared(const PreparedQuery& prep,
                                  const EpochPtr& snap);
  /// Completes a resolved cache slot: waits on a hit, computes and
  /// fills the promise (on every path) on a miss.
  Result<QueryAnswer> FinishSlot(const PreparedQuery& prep,
                                 const EpochPtr& snap,
                                 QueryCache::Slot* slot);
  /// Handles any non-query request synchronously; returns the response.
  std::string HandleWriteOrStats(const Request& req);
  /// Serves one "analytics" request from the materialized-view cache,
  /// pinned to the current epoch.
  std::string HandleAnalytics(const Request& req);

  /// Feeds one request latency to the histogram and the reservoir.
  void RecordLatency(uint64_t latency_ns);
  /// Emits a slow-query log line when the log is armed and `latency_ns`
  /// reaches the threshold: query text, epoch, duration and the top-3
  /// operators by self-inclusive time from the answer's profile tree.
  void MaybeLogSlow(const Request& req, uint64_t latency_ns,
                    const QueryAnswer* answer);

  ServerOptions options_;
  DeltaStore store_;
  QueryCache cache_;
  ViewCache views_;
  obs::QuantileReservoir latency_;
  std::mutex slow_mu_;  // Serializes slow-log lines across workers.
};

/// Cache-free, single-threaded evaluation of one query/explain request
/// against one epoch — the replay oracle the concurrency tests and
/// bench_e14 compare the served answers to. `answer.cached` is always
/// false and `answer.epoch` is `snap.epoch`.
Result<QueryAnswer> EvalServeQuery(const Request& req,
                                   const EpochSnapshot& snap,
                                   const PlannerOptions& planner = {});

}  // namespace serve
}  // namespace kgq

#endif  // KGQ_SERVE_SERVER_H_
