#include "serve/server.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iostream>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "obs/json_writer.h"
#include "obs/obs.h"
#include "plan/exec.h"
#include "plan/stats.h"
#include "query/match_query.h"
#include "rdf/bgp.h"
#include "rdf/convert.h"
#include "rpq/crpq.h"

namespace kgq {
namespace serve {

/// A query request after parsing and canonicalization: the parsed
/// front-end form (one member is live per `lang`), the cache key and
/// the resolved thread budget. Graph-independent — preparing touches no
/// snapshot, so the dispatcher can do it before pinning an epoch.
struct Server::PreparedQuery {
  QueryLang lang = QueryLang::kMatch;
  std::string key;
  MatchQuery match;
  Crpq crpq;
  std::vector<TriplePattern> bgp;
  ParallelOptions parallel;
  /// The request asked for a per-operator profile ("profile":true).
  bool profile = false;
};

namespace {

/// Canonical rendering of a BGP pattern list — the cache key for the
/// bgp front-end. Injective (constants are JSON-quoted), not meant to
/// be re-parsed.
std::string RenderBgpCanonical(const std::vector<TriplePattern>& patterns) {
  std::string out;
  auto term = [&out](const Term& t) {
    if (t.is_var) {
      out.push_back('?');
      out += t.text;
    } else {
      AppendJsonString(&out, t.text);
    }
  };
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (i > 0) out += " . ";
    const TriplePattern& p = patterns[i];
    term(p.s);
    out.push_back(' ');
    if (p.path != nullptr) {
      out.push_back('(');
      out += p.path->ToString();
      out.push_back(')');
    } else {
      term(p.p);
    }
    out.push_back(' ');
    term(p.o);
  }
  return out;
}

/// Resolves a BGP constant against the served graph's node space. The
/// serving layer names nodes "n<i>" — the same convention as the RDF
/// encoding of a labeled graph (rdf/convert.h) — so clients address
/// nodes by the ids the write path handed out. Anything else (including
/// out-of-range ids) resolves to kNoNode, the uniform "no match"
/// binding CompileBgp also uses.
NodeId ResolveBgpConstant(const std::string& term, const LabeledGraph& g) {
  if (term.size() < 2 || term[0] != 'n') return kNoNode;
  uint64_t v = 0;
  for (size_t i = 1; i < term.size(); ++i) {
    char c = term[i];
    if (c < '0' || c > '9') return kNoNode;
    v = v * 10 + static_cast<uint64_t>(c - '0');
    if (v > 0xFFFFFFFFull) return kNoNode;
  }
  if (v >= g.num_nodes()) return kNoNode;
  return static_cast<NodeId>(v);
}

/// Lowers a BGP to the shared IR over the served labeled graph — the
/// serving-layer sibling of CompileBgp (rdf/bgp.cc), with two
/// differences: constants are "n<i>" node names instead of RDF terms,
/// and a plain pattern whose predicate is kgq:label with a constant
/// object becomes a node-label test on the subject (mirroring the
/// LabeledToRdf encoding, where node labels live on kgq:label triples).
Result<ConjunctiveQuery> CompileBgpOverLabeled(
    const std::vector<TriplePattern>& patterns, const LabeledGraph& graph) {
  if (patterns.empty()) {
    return Status::InvalidArgument("empty basic graph pattern");
  }
  std::set<std::string> user_vars;
  for (const TriplePattern& p : patterns) {
    if (p.s.is_var) user_vars.insert(p.s.text);
    if (p.o.is_var) user_vars.insert(p.o.text);
  }

  ConjunctiveQuery cq;
  size_t next_const = 0;
  auto var_of = [&](const Term& t) -> std::string {
    if (t.is_var) return t.text;
    std::string name = "$c" + std::to_string(next_const++);
    while (user_vars.count(name) > 0) name += "_";
    cq.bound[name] = ResolveBgpConstant(t.text, graph);
    return name;
  };
  for (const TriplePattern& p : patterns) {
    if (p.path == nullptr && !p.p.is_var &&
        p.p.text == kNodeLabelPredicate) {
      if (p.o.is_var) {
        return Status::Unsupported(
            "kgq:label with a variable object (label enumeration) is not "
            "supported");
      }
      std::string v = var_of(p.s);
      TestPtr test = TestExpr::Label(p.o.text);
      auto it = cq.node_tests.find(v);
      cq.node_tests[v] =
          it == cq.node_tests.end() ? test : TestExpr::And(it->second, test);
      continue;
    }
    RegexPtr path = p.path;
    if (path == nullptr) {
      if (p.p.is_var) {
        return Status::Unsupported(
            "variable predicates are not supported by the serving "
            "front-end");
      }
      path = Regex::EdgeLabel(p.p.text);
    }
    cq.atoms.push_back({var_of(p.s), var_of(p.o), std::move(path)});
  }
  cq.projection.assign(user_vars.begin(), user_vars.end());
  return cq;
}

/// Compiles a prepared query to the shared IR over one epoch. Sets
/// `*ask` for BGPs with no user variable (the "does this pattern hold"
/// form), whose answer collapses to zero or one empty row.
Result<ConjunctiveQuery> CompilePrepared(const Server::PreparedQuery& prep,
                                         const EpochSnapshot& snap,
                                         bool* ask) {
  *ask = false;
  ConjunctiveQuery cq;
  switch (prep.lang) {
    case QueryLang::kMatch: {
      KGQ_ASSIGN_OR_RETURN(cq, CompileMatch(prep.match));
      break;
    }
    case QueryLang::kCrpq: {
      KGQ_ASSIGN_OR_RETURN(cq, CompileCrpq(prep.crpq));
      break;
    }
    case QueryLang::kBgp: {
      KGQ_ASSIGN_OR_RETURN(cq, CompileBgpOverLabeled(prep.bgp, snap.graph()));
      if (cq.projection.empty()) {
        *ask = true;
        cq.projection.push_back(cq.bound.begin()->first);
      }
      break;
    }
  }
  return cq;
}

/// Compile → plan → execute one prepared query against one epoch. The
/// uncached compute path shared by the server and the replay oracle.
/// With `capture_profile`, execution runs under a request-scoped
/// TraceContext and the answer carries the per-operator profile tree.
Result<QueryAnswer> ComputePrepared(const Server::PreparedQuery& prep,
                                    const EpochSnapshot& snap,
                                    const PlannerOptions& planner,
                                    bool capture_profile = false) {
  KGQ_SPAN("serve.query");
  bool ask = false;
  KGQ_ASSIGN_OR_RETURN(ConjunctiveQuery cq,
                       CompilePrepared(prep, snap, &ask));
  LabeledGraphView view(snap.graph());
  GraphStats stats = GraphStats::From(&view, snap.csr.get(),
                                      snap.node_label_counts.get());
  KGQ_ASSIGN_OR_RETURN(LogicalOpPtr plan, PlanQuery(cq, stats, planner));
  ExecOptions eopts;
  eopts.parallel = prep.parallel;
  eopts.snapshot = snap.csr.get();

  // The enable decision is snapshotted once, here: a concurrent
  // SetEnabled flip mid-execution can therefore never produce a torn
  // tree — the profile is captured whole or not at all (the executor
  // gates node construction only on the installed trace).
  std::shared_ptr<const obs::ProfileNode> profile;
  RowSet rows;
  if (capture_profile && obs::kCompiledIn && obs::Registry::Enabled()) {
    obs::TraceContext ctx;
    obs::ScopedTrace trace(&ctx);
    KGQ_ASSIGN_OR_RETURN(rows, ExecutePlan(view, *plan, eopts));
    profile = ctx.TakeProfile();
  } else {
    KGQ_ASSIGN_OR_RETURN(rows, ExecutePlan(view, *plan, eopts));
  }

  QueryAnswer answer;
  answer.epoch = snap.epoch;
  answer.profile = std::move(profile);
  if (ask) {
    if (!rows.rows.empty()) answer.rows.push_back({});
  } else {
    answer.columns = std::move(rows.schema);
    answer.rows = std::move(rows.rows);
  }
  return answer;
}

/// Compile → plan → EXPLAIN (uncached; a debugging surface).
Result<std::string> ExplainPrepared(const Server::PreparedQuery& prep,
                                    const EpochSnapshot& snap,
                                    const PlannerOptions& planner) {
  bool ask = false;
  KGQ_ASSIGN_OR_RETURN(ConjunctiveQuery cq,
                       CompilePrepared(prep, snap, &ask));
  LabeledGraphView view(snap.graph());
  GraphStats stats = GraphStats::From(&view, snap.csr.get(),
                                      snap.node_label_counts.get());
  KGQ_ASSIGN_OR_RETURN(LogicalOpPtr plan, PlanQuery(cq, stats, planner));
  return ExplainPlan(*plan);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options), cache_(options.cache_capacity) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.default_query_threads == 0) options_.default_query_threads = 1;
  if (options_.max_query_threads == 0) options_.max_query_threads = 1;
}

EpochPtr Server::Publish() {
  const uint64_t before = store_.Acquire()->content_version;
  EpochPtr snap = store_.Publish();
  // Cached answers are keyed on content_version, so an empty publish
  // (same content, new epoch number) keeps every entry; responses served
  // from them get their epoch patched to the pinned snapshot's.
  if (snap->content_version != before) cache_.Invalidate();
  return snap;
}

Result<Server::PreparedQuery> Server::Prepare(const Request& req) const {
  PreparedQuery prep;
  prep.lang = req.lang;
  switch (req.lang) {
    case QueryLang::kMatch: {
      KGQ_ASSIGN_OR_RETURN(prep.match, ParseMatchQuery(req.text));
      prep.key = "match\n" + prep.match.ToString();
      break;
    }
    case QueryLang::kCrpq: {
      KGQ_ASSIGN_OR_RETURN(prep.crpq, ParseCrpq(req.text));
      prep.key = "crpq\n" + prep.crpq.ToString();
      break;
    }
    case QueryLang::kBgp: {
      KGQ_ASSIGN_OR_RETURN(prep.bgp, ParseBgp(req.text));
      prep.key = "bgp\n" + RenderBgpCanonical(prep.bgp);
      break;
    }
  }
  size_t threads = req.threads == 0 ? options_.default_query_threads
                                    : req.threads;
  prep.parallel.num_threads =
      std::min(threads, options_.max_query_threads);
  prep.profile = req.op == RequestOp::kQuery && req.profile;
  if (prep.profile) KGQ_COUNTER_INC("serve.profile.requests");
  return prep;
}

Result<QueryAnswer> Server::RunPrepared(const PreparedQuery& prep,
                                        const EpochPtr& snap) {
  QueryCache::Slot slot = cache_.Lookup(prep.key, snap->content_version);
  return FinishSlot(prep, snap, &slot);
}

Result<QueryAnswer> Server::FinishSlot(const PreparedQuery& prep,
                                       const EpochPtr& snap,
                                       QueryCache::Slot* slot) {
  if (slot->hit) {
    CachedAnswerPtr cached = slot->future.get();
    if (!cached->status.ok()) return cached->status;
    QueryAnswer answer = cached->answer;
    answer.cached = true;
    // The entry may predate an empty publish (same content version,
    // older epoch number); the response reports the pinned epoch.
    answer.epoch = snap->epoch;
    return answer;
  }
  auto cached = std::make_shared<CachedAnswer>();
  // Profile when the computing request asked, or whenever the slow
  // log is armed (its lines need per-operator attribution). Coalesced
  // requests waiting on this slot — and later cache hits — get this
  // computation's profile (or none), which keeps the profile member
  // deterministic: admission order decides who computes.
  const bool capture_profile =
      prep.profile || options_.slow_query_ns > 0;
  Result<QueryAnswer> computed =
      ComputePrepared(prep, *snap, options_.planner, capture_profile);
  if (computed.ok()) {
    cached->answer = std::move(computed).value();
  } else {
    cached->status = computed.status();
  }
  // Fill on every path — a forever-pending slot would hang coalesced
  // requests waiting on this computation.
  slot->fill->set_value(cached);
  if (!cached->status.ok()) return cached->status;
  QueryAnswer answer = cached->answer;
  answer.cached = false;
  return answer;
}

Result<QueryAnswer> Server::ExecuteQuery(const Request& req) {
  return ExecuteQueryAt(req, store_.Acquire());
}

Result<QueryAnswer> Server::ExecuteQueryAt(const Request& req,
                                           const EpochPtr& snap) {
  KGQ_COUNTER_INC("serve.requests");
  uint64_t start = obs::NowNanos();
  if (req.op != RequestOp::kQuery) {
    KGQ_COUNTER_INC("serve.errors");
    return Status::InvalidArgument("ExecuteQuery handles \"query\" requests");
  }
  Result<PreparedQuery> prep = Prepare(req);
  if (!prep.ok()) {
    KGQ_COUNTER_INC("serve.errors");
    return prep.status();
  }
  Result<QueryAnswer> answer = RunPrepared(*prep, snap);
  if (!answer.ok()) KGQ_COUNTER_INC("serve.errors");
  const uint64_t latency = obs::NowNanos() - start;
  RecordLatency(latency);
  MaybeLogSlow(req, latency, answer.ok() ? &*answer : nullptr);
  return answer;
}

std::string Server::HandleWriteOrStats(const Request& req) {
  switch (req.op) {
    case RequestOp::kAddNode:
      return RenderNode(req, store_.AddNode(req.label));
    case RequestOp::kInsertEdge: {
      Result<bool> applied = store_.InsertEdge(req.from, req.to, req.label);
      if (!applied.ok()) {
        KGQ_COUNTER_INC("serve.errors");
        return RenderError(req, applied.status());
      }
      return RenderApplied(req, *applied);
    }
    case RequestOp::kDeleteEdge: {
      Result<bool> applied = store_.DeleteEdge(req.from, req.to, req.label);
      if (!applied.ok()) {
        KGQ_COUNTER_INC("serve.errors");
        return RenderError(req, applied.status());
      }
      return RenderApplied(req, *applied);
    }
    case RequestOp::kPublish: {
      EpochPtr snap = Publish();
      return RenderPublish(req, snap->epoch, snap->num_nodes(),
                           snap->num_edges());
    }
    case RequestOp::kStats:
      return RenderStats(req, BuildStats());
    case RequestOp::kMetrics:
      return RenderMetrics(req, BuildMetrics());
    case RequestOp::kAnalytics:
      return HandleAnalytics(req);
    case RequestOp::kQuery:
    case RequestOp::kExplain:
      break;  // Not reached; queries go through Prepare/RunPrepared.
  }
  KGQ_COUNTER_INC("serve.errors");
  return RenderError(req, Status::Internal("misrouted request"));
}

std::string Server::HandleAnalytics(const Request& req) {
  KGQ_SPAN("serve.analytics");
  EpochPtr snap = store_.Acquire();
  if (req.has_node && req.node >= snap->num_nodes()) {
    KGQ_COUNTER_INC("serve.errors");
    return RenderError(req,
                       Status::InvalidArgument("analytics: no such node"));
  }
  AnalyticsBody body;
  body.epoch = snap->epoch;
  body.view = req.view;
  body.has_node = req.has_node;
  body.node = req.node;
  if (req.view == "components") {
    std::shared_ptr<const ComponentAssignment> comp = views_.Components(snap);
    body.num_components = comp->num_components;
    if (req.has_node) body.component = comp->component[req.node];
  } else if (req.view == "pagerank") {
    std::shared_ptr<const std::vector<int64_t>> rank = views_.PageRank(snap);
    if (req.has_node) body.rank = (*rank)[req.node];
    if (req.top > 0) {
      body.has_top = true;
      body.top.reserve(rank->size());
      for (NodeId n = 0; n < rank->size(); ++n) {
        body.top.emplace_back(n, (*rank)[n]);
      }
      const size_t k = std::min<size_t>(req.top, body.top.size());
      std::partial_sort(body.top.begin(), body.top.begin() + k,
                        body.top.end(),
                        [](const std::pair<NodeId, int64_t>& a,
                           const std::pair<NodeId, int64_t>& b) {
                          if (a.second != b.second) return a.second > b.second;
                          return a.first < b.first;
                        });
      body.top.resize(k);
    }
  } else {  // reach
    std::shared_ptr<const BoolCsr> closure =
        views_.Reachability(snap, req.label);
    body.label = req.label;
    if (req.has_node) {
      body.reach_nodes.assign(
          closure->cols.begin() +
              static_cast<ptrdiff_t>(closure->offsets[req.node]),
          closure->cols.begin() +
              static_cast<ptrdiff_t>(closure->offsets[req.node + 1]));
    } else {
      body.nnz = closure->nnz();
    }
  }
  return RenderAnalytics(req, body);
}

std::string Server::HandleLine(const std::string& line) {
  KGQ_COUNTER_INC("serve.requests");
  uint64_t start = obs::NowNanos();
  Request req;
  std::string resp;
  QueryAnswer done_answer;
  bool have_answer = false;
  Status parsed = ParseRequestLine(line, &req);
  if (!parsed.ok()) {
    KGQ_COUNTER_INC("serve.errors");
    resp = RenderError(req, parsed);
  } else if (req.op == RequestOp::kQuery || req.op == RequestOp::kExplain) {
    Result<PreparedQuery> prep = Prepare(req);
    if (!prep.ok()) {
      KGQ_COUNTER_INC("serve.errors");
      resp = RenderError(req, prep.status());
    } else {
      EpochPtr snap = store_.Acquire();
      if (req.op == RequestOp::kExplain) {
        Result<std::string> plan =
            ExplainPrepared(*prep, *snap, options_.planner);
        if (!plan.ok()) {
          KGQ_COUNTER_INC("serve.errors");
          resp = RenderError(req, plan.status());
        } else {
          resp = RenderExplain(req, snap->epoch, *plan);
        }
      } else {
        Result<QueryAnswer> answer = RunPrepared(*prep, snap);
        if (!answer.ok()) {
          KGQ_COUNTER_INC("serve.errors");
          resp = RenderError(req, answer.status());
        } else {
          resp = RenderAnswer(req, *answer);
          done_answer = std::move(*answer);
          have_answer = true;
        }
      }
    }
  } else {
    resp = HandleWriteOrStats(req);
  }
  const uint64_t latency = obs::NowNanos() - start;
  RecordLatency(latency);
  MaybeLogSlow(req, latency, have_answer ? &done_answer : nullptr);
  return resp;
}

StatsBody Server::BuildStats() {
  StatsBody s;
  s.epoch = store_.CurrentEpoch();
  s.nodes = store_.NumNodes();
  s.edges = store_.NumLiveEdges();
  s.pending = store_.PendingOps();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_size = cache_.size();
  s.writes_applied = store_.WritesApplied();
  s.writes_noop = store_.WritesNoop();
  s.p50_ns = latency_.Quantile(50);
  s.p99_ns = latency_.Quantile(99);
  return s;
}

MetricsBody Server::BuildMetrics() {
  MetricsBody m;
  m.epoch = store_.CurrentEpoch();
  m.samples = latency_.WindowSize();
  m.p50_ns = latency_.Quantile(50);
  m.p95_ns = latency_.Quantile(95);
  m.p99_ns = latency_.Quantile(99);
  std::ostringstream os;
  obs::JsonWriter w(os, /*compact=*/true);
  obs::Registry::Get().WriteJson(&w);
  m.registry_json = os.str();
  return m;
}

std::string Server::MetricsJson() {
  Request req;  // No correlation id: the periodic-export shape.
  return RenderMetrics(req, BuildMetrics());
}

void Server::RecordLatency(uint64_t latency_ns) {
  KGQ_HISTOGRAM_RECORD("serve.latency_ns", latency_ns);
  latency_.Record(latency_ns);
}

void Server::MaybeLogSlow(const Request& req, uint64_t latency_ns,
                          const QueryAnswer* answer) {
  if (options_.slow_query_ns == 0 || latency_ns < options_.slow_query_ns) {
    return;
  }
  if (req.op != RequestOp::kQuery) return;
  KGQ_COUNTER_INC("serve.profile.slow");

  // Top-3 operators by (inclusive) wall time, from the profile tree the
  // armed slow log made every computation capture. A cache hit may
  // carry the computing request's tree; an obs-disabled run has none.
  std::vector<const obs::ProfileNode*> ops;
  if (answer != nullptr && answer->profile != nullptr) {
    std::vector<const obs::ProfileNode*> stack = {answer->profile.get()};
    while (!stack.empty()) {
      const obs::ProfileNode* node = stack.back();
      stack.pop_back();
      ops.push_back(node);
      for (const auto& child : node->children) stack.push_back(child.get());
    }
    std::stable_sort(ops.begin(), ops.end(),
                     [](const obs::ProfileNode* a, const obs::ProfileNode* b) {
                       return a->time_ns > b->time_ns;
                     });
    if (ops.size() > 3) ops.resize(3);
  }

  std::string line = "{\"slow_query\":{\"lang\":";
  AppendJsonString(&line, QueryLangName(req.lang));
  line += ",\"text\":";
  AppendJsonString(&line, req.text);
  line += ",\"epoch\":";
  line += std::to_string(answer != nullptr ? answer->epoch : 0);
  line += ",\"cached\":";
  line += (answer != nullptr && answer->cached) ? "true" : "false";
  line += ",\"time_ns\":";
  line += std::to_string(latency_ns);
  line += ",\"top_ops\":[";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) line += ',';
    line += "{\"op\":";
    AppendJsonString(&line, ops[i]->kind);
    if (!ops[i]->engine.empty()) {
      line += ",\"engine\":";
      AppendJsonString(&line, ops[i]->engine);
    }
    line += ",\"rows_out\":";
    line += std::to_string(ops[i]->rows_out);
    line += ",\"time_ns\":";
    line += std::to_string(ops[i]->time_ns);
    line += '}';
  }
  line += "]}}";

  std::ostream* out =
      options_.slow_log != nullptr ? options_.slow_log : &std::cerr;
  std::lock_guard<std::mutex> lock(slow_mu_);
  *out << line << '\n';
  out->flush();
}

/// Shared state of one ServeStream run: the bounded job queue feeding
/// the workers and the reorder buffer serializing responses back into
/// input order.
struct Server::StreamState {
  struct Job {
    uint64_t seq = 0;
    Request req;
    PreparedQuery prep;
    EpochPtr snap;
    QueryCache::Slot slot;
    uint64_t admit_ns = 0;
  };

  explicit StreamState(std::ostream& o) : out(o) {}

  std::mutex mu;
  std::condition_variable cv_space;  // Dispatcher waits for queue room.
  std::condition_variable cv_work;   // Workers wait for jobs.
  std::deque<Job> queue;
  bool done = false;

  std::mutex emit_mu;
  std::map<uint64_t, std::string> reorder;
  uint64_t next_emit = 0;
  std::ostream& out;

  /// Hands one response line to the reorder buffer; flushes every line
  /// that is now next in input order.
  void Emit(uint64_t seq, std::string line) {
    std::lock_guard<std::mutex> lock(emit_mu);
    reorder.emplace(seq, std::move(line));
    bool wrote = false;
    for (auto it = reorder.find(next_emit); it != reorder.end();
         it = reorder.find(next_emit)) {
      out << it->second << '\n';
      reorder.erase(it);
      ++next_emit;
      wrote = true;
    }
    if (wrote) out.flush();
  }
};

void Server::ServeStream(std::istream& in, std::ostream& out) {
  StreamState state(out);

  // FIFO pop order plus admission-order cache lookups make the worker
  // pool deadlock-free under request coalescing: the computing (miss)
  // job always precedes the jobs waiting on its future.
  std::vector<std::thread> workers;
  workers.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers.emplace_back([this, &state] {
      for (;;) {
        StreamState::Job job;
        {
          std::unique_lock<std::mutex> lock(state.mu);
          state.cv_work.wait(
              lock, [&state] { return state.done || !state.queue.empty(); });
          if (state.queue.empty()) return;  // done and drained.
          job = std::move(state.queue.front());
          state.queue.pop_front();
          KGQ_GAUGE_SET("serve.queue.depth", state.queue.size());
        }
        state.cv_space.notify_one();
        Result<QueryAnswer> answer =
            FinishSlot(job.prep, job.snap, &job.slot);
        std::string resp;
        if (!answer.ok()) {
          KGQ_COUNTER_INC("serve.errors");
          resp = RenderError(job.req, answer.status());
        } else {
          resp = RenderAnswer(job.req, *answer);
        }
        const uint64_t latency = obs::NowNanos() - job.admit_ns;
        RecordLatency(latency);
        MaybeLogSlow(job.req, latency, answer.ok() ? &*answer : nullptr);
        state.Emit(job.seq, std::move(resp));
      }
    });
  }

  std::string line;
  uint64_t seq = 0;
  while (std::getline(in, line)) {
    const uint64_t my_seq = seq++;
    KGQ_COUNTER_INC("serve.requests");
    const uint64_t admit_ns = obs::NowNanos();
    Request req;
    Status parsed = ParseRequestLine(line, &req);
    if (!parsed.ok()) {
      KGQ_COUNTER_INC("serve.errors");
      state.Emit(my_seq, RenderError(req, parsed));
      RecordLatency(obs::NowNanos() - admit_ns);
      continue;
    }
    if (req.op == RequestOp::kQuery) {
      Result<PreparedQuery> prep = Prepare(req);
      if (!prep.ok()) {
        KGQ_COUNTER_INC("serve.errors");
        state.Emit(my_seq, RenderError(req, prep.status()));
        RecordLatency(obs::NowNanos() - admit_ns);
        continue;
      }
      // Pin the epoch and resolve the cache *at admission*, in input
      // order — this is what makes hit/miss (and the whole response
      // stream) deterministic for any worker count.
      StreamState::Job job;
      job.seq = my_seq;
      job.req = std::move(req);
      job.prep = std::move(*prep);
      job.snap = store_.Acquire();
      job.slot = cache_.Lookup(job.prep.key, job.snap->content_version);
      job.admit_ns = admit_ns;
      {
        std::unique_lock<std::mutex> lock(state.mu);
        state.cv_space.wait(lock, [this, &state] {
          return state.queue.size() < options_.queue_capacity;
        });
        state.queue.push_back(std::move(job));
        KGQ_GAUGE_SET("serve.queue.depth", state.queue.size());
      }
      state.cv_work.notify_one();
      continue;
    }
    // Writes, publish, stats and explain run on the dispatcher: writes
    // must be serialized in input order, and the rest are cheap.
    std::string resp;
    if (req.op == RequestOp::kExplain) {
      Result<PreparedQuery> prep = Prepare(req);
      if (!prep.ok()) {
        KGQ_COUNTER_INC("serve.errors");
        resp = RenderError(req, prep.status());
      } else {
        EpochPtr snap = store_.Acquire();
        Result<std::string> plan =
            ExplainPrepared(*prep, *snap, options_.planner);
        if (!plan.ok()) {
          KGQ_COUNTER_INC("serve.errors");
          resp = RenderError(req, plan.status());
        } else {
          resp = RenderExplain(req, snap->epoch, *plan);
        }
      }
    } else {
      resp = HandleWriteOrStats(req);
    }
    state.Emit(my_seq, std::move(resp));
    RecordLatency(obs::NowNanos() - admit_ns);
  }

  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.done = true;
  }
  state.cv_work.notify_all();
  for (std::thread& t : workers) t.join();
}

Result<QueryAnswer> EvalServeQuery(const Request& req,
                                   const EpochSnapshot& snap,
                                   const PlannerOptions& planner) {
  if (req.op != RequestOp::kQuery) {
    return Status::InvalidArgument("EvalServeQuery replays \"query\" requests");
  }
  Server::PreparedQuery prep;
  prep.lang = req.lang;
  switch (req.lang) {
    case QueryLang::kMatch: {
      KGQ_ASSIGN_OR_RETURN(prep.match, ParseMatchQuery(req.text));
      break;
    }
    case QueryLang::kCrpq: {
      KGQ_ASSIGN_OR_RETURN(prep.crpq, ParseCrpq(req.text));
      break;
    }
    case QueryLang::kBgp: {
      KGQ_ASSIGN_OR_RETURN(prep.bgp, ParseBgp(req.text));
      break;
    }
  }
  prep.parallel.num_threads = 1;  // The single-threaded reference path.
  return ComputePrepared(prep, snap, planner);
}

}  // namespace serve
}  // namespace kgq
