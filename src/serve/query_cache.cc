#include "serve/query_cache.h"

#include "obs/obs.h"

namespace kgq {
namespace serve {

QueryCache::Slot QueryCache::Lookup(const std::string& key,
                                    uint64_t version) {
  // The content version is folded into the stored key, so an entry can
  // only ever be hit by a query pinned to the same graph content.
  std::string full = std::to_string(version);
  full.push_back('\n');
  full += key;

  Slot slot;
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ > 0) {
    auto it = entries_.find(full);
    if (it != entries_.end()) {
      KGQ_COUNTER_INC("serve.cache.hit");
      hits_.fetch_add(1, std::memory_order_relaxed);
      slot.hit = true;
      slot.future = it->second;
      return slot;
    }
  }
  KGQ_COUNTER_INC("serve.cache.miss");
  misses_.fetch_add(1, std::memory_order_relaxed);
  slot.fill = std::make_shared<std::promise<CachedAnswerPtr>>();
  slot.future = slot.fill->get_future().share();
  if (capacity_ > 0) {
    if (entries_.size() >= capacity_) entries_.clear();
    entries_.emplace(std::move(full), slot.future);
    KGQ_GAUGE_SET("serve.cache.size", entries_.size());
  }
  return slot;
}

void QueryCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  KGQ_COUNTER_INC("serve.cache.invalidate");
  KGQ_GAUGE_SET("serve.cache.size", 0);
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace serve
}  // namespace kgq
