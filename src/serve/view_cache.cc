#include "serve/view_cache.h"

#include <algorithm>
#include <utility>

#include "analytics/pagerank.h"
#include "obs/obs.h"

namespace kgq {
namespace serve {

namespace {

/// Union-find with path halving; roots are only read through Find.
struct Dsu {
  std::vector<uint32_t> parent;
  explicit Dsu(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  }
  uint32_t Find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

/// The label's adjacency matrix at `snap` — the shared per-label
/// constructor from pathalg/matrix_rpq.h.
BoolCsr AdjForLabel(const EpochSnapshot& snap, std::string_view label) {
  return BoolCsrForLabel(*snap.csr, label);
}

/// Extends a closure matrix to `n` nodes (appended nodes have empty
/// rows/columns — exactly what an untouched label's closure looks like
/// after node growth).
BoolCsr PadTo(const BoolCsr& m, size_t n) {
  BoolCsr out = m;
  out.num_rows = n;
  out.num_cols = n;
  out.offsets.resize(n + 1, m.cols.size());
  return out;
}

/// From-scratch positive-length closure R = A⁺ by frontier iteration.
BoolCsr ColdClosure(const BoolCsr& adj, const ParallelOptions& par) {
  BoolCsr r = adj;
  BoolCsr delta = adj;
  while (delta.nnz() != 0) {
    delta = BoolSpGemmDelta(delta, adj, r, par);
    if (delta.nnz() == 0) break;
    r = BoolUnion(r, delta);
  }
  return r;
}

/// True when the epoch transition carried no content change at all.
bool DeltaIsEmpty(const EpochDelta& d) {
  return d.inserted.empty() && d.deleted.empty() && d.nodes_added == 0;
}

}  // namespace

bool ViewCache::CanAdvance(const EpochPtr& cached, const EpochPtr& snap) {
  return cached != nullptr && snap->delta.has_base &&
         snap->delta.base_epoch == cached->epoch;
}

std::shared_ptr<const ComponentAssignment> ViewCache::Components(
    const EpochPtr& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (components_.snap != nullptr && components_.snap->epoch == snap->epoch) {
    KGQ_COUNTER_INC("serve.view.hit");
    return components_.value;
  }
  std::shared_ptr<const ComponentAssignment> value;
  if (CanAdvance(components_.snap, snap)) {
    if (DeltaIsEmpty(snap->delta)) {
      KGQ_COUNTER_INC("serve.view.hit");
      value = components_.value;
    } else if (!snap->delta.deleted.empty()) {
      // An edge deletion can split a component; recompute.
      KGQ_COUNTER_INC("serve.view.fallback");
      value = std::make_shared<ComponentAssignment>(
          WeaklyConnectedComponentsCsr(*snap->csr));
    } else {
      KGQ_COUNTER_INC("serve.view.advance");
      const ComponentAssignment& old = *components_.value;
      const size_t nn = snap->num_nodes();
      Dsu dsu(nn);
      // Seed with the previous partition: union every old node into its
      // component's first (minimum-id) member.
      std::vector<uint32_t> rep(old.num_components, 0xFFFFFFFFu);
      for (NodeId v = 0; v < old.component.size(); ++v) {
        uint32_t c = old.component[v];
        if (rep[c] == 0xFFFFFFFFu) {
          rep[c] = v;
        } else {
          dsu.Union(v, rep[c]);
        }
      }
      for (const CsrSnapshot::EdgeRecord& e : snap->delta.inserted) {
        dsu.Union(e.from, e.to);
      }
      // Canonical relabel: first-seen root in ascending node order ==
      // the BFS traversal's discovery-order component ids.
      auto fresh = std::make_shared<ComponentAssignment>();
      fresh->component.assign(nn, 0xFFFFFFFFu);
      std::vector<uint32_t> remap(nn, 0xFFFFFFFFu);
      for (NodeId v = 0; v < nn; ++v) {
        uint32_t root = dsu.Find(static_cast<uint32_t>(v));
        if (remap[root] == 0xFFFFFFFFu) remap[root] = fresh->num_components++;
        fresh->component[v] = remap[root];
      }
      value = fresh;
    }
  } else {
    KGQ_COUNTER_INC("serve.view.rebuild");
    value = std::make_shared<ComponentAssignment>(
        WeaklyConnectedComponentsCsr(*snap->csr));
  }
  components_ = ComponentsEntry{snap, value};
  return value;
}

std::shared_ptr<const std::vector<int64_t>> ViewCache::PageRank(
    const EpochPtr& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pagerank_.snap != nullptr && pagerank_.snap->epoch == snap->epoch) {
    KGQ_COUNTER_INC("serve.view.hit");
    return pagerank_.value;
  }
  std::shared_ptr<const std::vector<int64_t>> value;
  if (CanAdvance(pagerank_.snap, snap)) {
    if (DeltaIsEmpty(snap->delta)) {
      KGQ_COUNTER_INC("serve.view.hit");
      value = pagerank_.value;
    } else {
      std::vector<std::pair<NodeId, NodeId>> deleted;
      deleted.reserve(snap->delta.deleted.size());
      for (const CsrSnapshot::EdgeRecord& e : snap->delta.deleted) {
        deleted.emplace_back(e.from, e.to);
      }
      PageRankFixpoint fp =
          PageRankFixpointWarm(*pagerank_.snap->csr, *pagerank_.value,
                               *snap->csr, deleted, parallel_);
      KGQ_COUNTER_INC(fp.warm ? "serve.view.advance" : "serve.view.fallback");
      value = std::make_shared<std::vector<int64_t>>(std::move(fp.rank));
    }
  } else {
    KGQ_COUNTER_INC("serve.view.rebuild");
    PageRankFixpoint fp = PageRankFixpointCold(*snap->csr, parallel_);
    value = std::make_shared<std::vector<int64_t>>(std::move(fp.rank));
  }
  pagerank_ = PageRankEntry{snap, value};
  return value;
}

std::shared_ptr<const BoolCsr> ViewCache::Reachability(
    const EpochPtr& snap, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = reach_.find(label);
  if (it != reach_.end() && it->second.snap->epoch == snap->epoch) {
    KGQ_COUNTER_INC("serve.view.hit");
    return it->second.closure;
  }
  std::shared_ptr<const BoolCsr> closure;
  const size_t nn = snap->num_nodes();
  if (it != reach_.end() && CanAdvance(it->second.snap, snap)) {
    bool label_deleted = false;
    for (const CsrSnapshot::EdgeRecord& e : snap->delta.deleted) {
      if (e.label == label) {
        label_deleted = true;
        break;
      }
    }
    std::vector<std::pair<uint32_t, uint32_t>> ins;
    for (const CsrSnapshot::EdgeRecord& e : snap->delta.inserted) {
      if (e.label == label) ins.emplace_back(e.from, e.to);
    }
    if (label_deleted) {
      // Deletes can remove closure pairs; per-label recompute.
      KGQ_COUNTER_INC("serve.view.fallback");
      closure = std::make_shared<BoolCsr>(
          ColdClosure(AdjForLabel(*snap, label), parallel_));
    } else if (ins.empty()) {
      // Untouched label: the closure carries over by pointer (padded
      // for node growth — appended nodes have no edges of this label).
      KGQ_COUNTER_INC("serve.view.hit");
      closure = it->second.closure->num_rows == nn
                    ? it->second.closure
                    : std::make_shared<BoolCsr>(
                          PadTo(*it->second.closure, nn));
    } else {
      // Insert-only delta D: the first new edge of any new path is in
      // D, so Δ₀ = (D ∪ R·D) \ R seeds every new pair's prefix; the
      // frontier loop extends suffixes one A'-step at a time.
      KGQ_COUNTER_INC("serve.view.advance");
      BoolCsr r = PadTo(*it->second.closure, nn);
      BoolCsr adj = AdjForLabel(*snap, label);
      BoolCsr d = BoolCsr::FromEntries(nn, nn, ins);
      BoolCsr delta = BoolUnion(BoolSpGemmDelta(r, d, r, parallel_), [&] {
        std::vector<std::pair<uint32_t, uint32_t>> fresh;
        for (const auto& [f, t] : ins) {
          if (!r.Test(f, t)) fresh.emplace_back(f, t);
        }
        return BoolCsr::FromEntries(nn, nn, fresh);
      }());
      while (delta.nnz() != 0) {
        r = BoolUnion(r, delta);
        delta = BoolSpGemmDelta(delta, adj, r, parallel_);
      }
      closure = std::make_shared<BoolCsr>(std::move(r));
    }
  } else {
    KGQ_COUNTER_INC("serve.view.rebuild");
    closure = std::make_shared<BoolCsr>(
        ColdClosure(AdjForLabel(*snap, label), parallel_));
  }
  reach_[std::string(label)] = ReachEntry{snap, closure};
  return closure;
}

}  // namespace serve
}  // namespace kgq
