#ifndef KGQ_SERVE_PROTOCOL_H_
#define KGQ_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <memory>

#include "graph/multigraph.h"
#include "obs/trace.h"
#include "util/result.h"

namespace kgq {
namespace serve {

/// Hard cap on one request line. Longer lines are rejected with
/// OutOfRange before any parsing happens — the "oversized" arm of the
/// protocol fuzz suite.
inline constexpr size_t kMaxRequestBytes = 1 << 16;  // 64 KiB

/// Maximum nesting depth ParseJson accepts (objects/arrays). Requests
/// are flat; the limit only bounds adversarial input.
inline constexpr size_t kMaxJsonDepth = 16;

/// A parsed JSON value — the minimal DOM behind the jsonl request
/// protocol. Numbers are kept as double plus an exact-integer flag
/// (node ids and epoch numbers must arrive as integers).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  bool number_is_int = false;  ///< No '.', 'e' and within int64 range.
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  /// First member with this key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses exactly one JSON value spanning all of `text` (leading and
/// trailing whitespace allowed, trailing garbage is an error). Errors
/// are ParseError (syntax) or OutOfRange (too deep / too long).
Result<JsonValue> ParseJson(std::string_view text);

/// The request operations of the jsonl protocol. Writes mutate the
/// delta store and take effect at the next publish; queries and
/// explains run against the latest published epoch.
enum class RequestOp {
  kAddNode,     ///< {"op":"add_node","label":L} → node id
  kInsertEdge,  ///< {"op":"insert_edge","from":N,"to":N,"label":L}
  kDeleteEdge,  ///< {"op":"delete_edge","from":N,"to":N,"label":L}
  kPublish,     ///< {"op":"publish"} → new epoch
  kQuery,       ///< {"op":"query","lang":...,"text":...[,"threads":T]
                ///<  [,"profile":true]}
  kExplain,     ///< {"op":"explain","lang":...,"text":...} → plan text
  kStats,       ///< {"op":"stats"} → epoch/nodes/edges/pending/cache/...
  kMetrics,     ///< {"op":"metrics"} → registry dump + exact latency
                ///<  quantiles
  kAnalytics,   ///< {"op":"analytics","view":V[,"label":L][,"node":N]
                ///<  [,"top":K]} → materialized view lookup
};

/// The three query front-ends the server compiles through src/plan.
enum class QueryLang { kMatch, kCrpq, kBgp };

const char* RequestOpName(RequestOp op);
const char* QueryLangName(QueryLang lang);

/// One validated request. `id` is an optional client-chosen correlation
/// number echoed in the response.
struct Request {
  RequestOp op = RequestOp::kStats;
  bool has_id = false;
  uint64_t id = 0;
  std::string label;      // add_node / insert_edge / delete_edge
  NodeId from = kNoNode;  // insert_edge / delete_edge
  NodeId to = kNoNode;
  QueryLang lang = QueryLang::kMatch;  // query / explain
  std::string text;                    // query / explain
  size_t threads = 0;  // query: per-query thread budget (0 = server default)
  /// query: attach the per-operator profile tree to the response. The
  /// response then always carries a "profile" member — the tree when
  /// one was captured, null when profiling is unavailable (obs compiled
  /// out or disabled) or the answer was served from a cache entry
  /// computed without a profile.
  bool profile = false;
  /// analytics: which materialized view — "components", "pagerank" or
  /// "reach" (the latter requires `label`: the edge label whose
  /// positive-length closure is queried).
  std::string view;
  bool has_node = false;  ///< analytics: scope the response to one node.
  NodeId node = kNoNode;
  uint64_t top = 0;  ///< analytics pagerank: top-K ranked nodes.
};

/// Parses and validates one request line. On failure returns a non-OK
/// status and leaves in `*out` whatever could still be recovered — in
/// particular a well-formed "id" member, so the error response can be
/// correlated. Never throws, never reads past the line.
Status ParseRequestLine(std::string_view line, Request* out);

/// A query's answer: the epoch it was pinned to, whether it was served
/// from the plan/result cache, and the canonical (sorted, deduplicated,
/// limited) rows.
struct QueryAnswer {
  uint64_t epoch = 0;
  bool cached = false;
  std::vector<std::string> columns;
  std::vector<std::vector<NodeId>> rows;
  /// Per-operator profile tree, when the computation captured one
  /// (request asked for it, or the server's slow-query log is armed).
  /// Shared with the cache entry; never mutated after capture.
  std::shared_ptr<const obs::ProfileNode> profile;

  bool operator==(const QueryAnswer& other) const {
    return epoch == other.epoch && columns == other.columns &&
           rows == other.rows;
  }
};

/// The "stats" response payload. Every field except the `_ns` pair is
/// deterministic under the serving layer's admission-order discipline
/// (cache lookups, writes and the stats request itself are all resolved
/// on the dispatcher in input order), so golden diffs byte-compare them
/// at any worker count; the `_ns` fields are wall-clock and rendered
/// last so gates can normalize everything `_ns`-suffixed to 0.
struct StatsBody {
  uint64_t epoch = 0;
  size_t nodes = 0;
  size_t edges = 0;
  size_t pending = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t cache_size = 0;
  uint64_t writes_applied = 0;
  uint64_t writes_noop = 0;
  uint64_t p50_ns = 0;  ///< Exact reservoir p50 of serve.latency_ns.
  uint64_t p99_ns = 0;  ///< Exact reservoir p99 of serve.latency_ns.
};

/// The "analytics" response payload. Every rendered field is a pure
/// function of the pinned epoch's logical graph (no iteration counts,
/// no wall-clock — maintenance telemetry goes to the obs registry), so
/// analytics responses are byte-stable across hit/advance/rebuild paths
/// and across worker counts. `view` selects which members render.
struct AnalyticsBody {
  uint64_t epoch = 0;
  std::string view;  ///< "components" | "pagerank" | "reach"

  // components
  size_t num_components = 0;
  uint32_t component = 0;  ///< with node: that node's component id.

  // pagerank (integer fixed-point, kPageRankScale units)
  int64_t rank = 0;  ///< with node: that node's rank.
  /// With top-K: (node, rank) sorted by rank descending, node ascending.
  std::vector<std::pair<NodeId, int64_t>> top;

  // reach
  std::string label;
  size_t nnz = 0;                   ///< closure size (no node given).
  std::vector<NodeId> reach_nodes;  ///< with node: successors, ascending.

  bool has_node = false;
  NodeId node = kNoNode;
  bool has_top = false;
};

/// The "metrics" response payload: exact latency quantiles from the
/// server's QuantileReservoir plus the full obs registry export
/// (`registry_json` must be one compact JSON object; it is embedded
/// verbatim as the "metrics" member).
struct MetricsBody {
  uint64_t epoch = 0;
  uint64_t samples = 0;  ///< Reservoir window size the quantiles are over.
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  std::string registry_json = "{}";
};

/// Response renderers. One line each (no trailing newline), fixed field
/// order so responses are byte-stable for golden diffs: "id" first when
/// the request carried one, then "ok", then the payload.
std::string RenderError(const Request& req, const Status& status);
std::string RenderNode(const Request& req, NodeId node);
std::string RenderApplied(const Request& req, bool applied);
std::string RenderPublish(const Request& req, uint64_t epoch, size_t nodes,
                          size_t edges);
std::string RenderStats(const Request& req, const StatsBody& stats);
std::string RenderMetrics(const Request& req, const MetricsBody& metrics);
std::string RenderAnalytics(const Request& req, const AnalyticsBody& body);
std::string RenderAnswer(const Request& req, const QueryAnswer& answer);
std::string RenderExplain(const Request& req, uint64_t epoch,
                          const std::string& plan);

/// Appends one profile tree as a JSON object: fixed field order
/// {"op","engine"?,"rows_in","rows_out","time_ns","children"}; "engine"
/// is omitted for operators with no engine choice. `time_ns` is the
/// only non-deterministic field.
void AppendProfileNode(std::string* out, const obs::ProfileNode& node);

/// Appends `s` JSON-escaped (quotes included) to `out` — the escaping
/// rules shared by every renderer.
void AppendJsonString(std::string* out, std::string_view s);

}  // namespace serve
}  // namespace kgq

#endif  // KGQ_SERVE_PROTOCOL_H_
