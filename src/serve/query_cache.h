#ifndef KGQ_SERVE_QUERY_CACHE_H_
#define KGQ_SERVE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/protocol.h"
#include "util/status.h"

namespace kgq {
namespace serve {

/// One cached outcome: either the canonical rows of a query or the
/// (deterministic) compile/plan error it produced. Failures are cached
/// too — a repeated bad query costs one compilation, not one per
/// request, and the hit/miss sequence stays deterministic.
struct CachedAnswer {
  Status status;       ///< Non-OK: the cached failure.
  QueryAnswer answer;  ///< Valid when status.ok(); `cached` flag unset.
};

using CachedAnswerPtr = std::shared_ptr<const CachedAnswer>;

/// The plan/result cache of the serving layer, keyed on canonical query
/// text + snapshot *content version*.
///
/// Keys are the *canonical* rendering of the parsed query (front-end
/// name + parser round-trip), so textual variants of one query — extra
/// whitespace, case-folded keywords — share an entry. The snapshot's
/// content version is part of the key: an entry can never serve rows
/// from a different graph *content*, while epochs that republish
/// identical content (empty publishes) keep hitting it — the server
/// patches the response's epoch number to the pinned snapshot's.
/// Server::Publish() calls Invalidate() only when the published content
/// actually changed; Invalidate drops every entry (stale versions are
/// unreachable anyway, this just frees the memory) and bumps
/// serve.cache.invalidate exactly once per content change.
///
/// Lookup() implements request coalescing: the first miss installs an
/// in-flight slot (a shared_future) that the caller must fill exactly
/// once via Slot::fill; concurrent identical queries get the same
/// future and block on the single computation instead of repeating it.
/// Because the server admits requests in input order, the hit/miss
/// sequence — and with it the `cached` response flag — is deterministic
/// for any worker count.
///
/// A capacity of 0 disables caching: every Lookup is a miss and nothing
/// is stored (the returned slot still works, it is just private to the
/// caller). When the map reaches capacity it is cleared wholesale —
/// epoch-generational workloads rebuild it in one round of misses, and
/// wholesale clearing keeps eviction deterministic.
///
/// obs: counters serve.cache.hit / serve.cache.miss (per Lookup),
/// serve.cache.invalidate (per Invalidate); gauge serve.cache.size.
class QueryCache {
 public:
  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  struct Slot {
    bool hit = false;
    std::shared_future<CachedAnswerPtr> future;
    /// Non-null exactly on a miss: the caller computes the answer and
    /// must set_value exactly once (on every path, including errors).
    std::shared_ptr<std::promise<CachedAnswerPtr>> fill;
  };

  /// Finds or installs the slot for (key, version) — `version` is the
  /// pinned snapshot's content_version.
  Slot Lookup(const std::string& key, uint64_t version);

  /// Drops every entry (the cached content version just became stale).
  /// Called once per content-changing Publish().
  void Invalidate();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Per-instance hit/miss tallies since construction. Unlike the
  /// process-global serve.cache.* counters (which mix every cache in
  /// the process), these belong to this cache alone — the numbers the
  /// "stats" response reports. Deterministic under the serving layer's
  /// admission-order lookups.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::unordered_map<std::string, std::shared_future<CachedAnswerPtr>>
      entries_;
};

}  // namespace serve
}  // namespace kgq

#endif  // KGQ_SERVE_QUERY_CACHE_H_
