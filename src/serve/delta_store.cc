#include "serve/delta_store.h"

#include <utility>

#include "obs/obs.h"

namespace kgq {
namespace serve {

DeltaStore::DeltaStore() {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = MaterializeLocked(0);
}

NodeId DeltaStore::AddNode(std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  node_labels_.emplace_back(label);
  ++pending_ops_;
  ++writes_applied_;
  KGQ_COUNTER_INC("serve.writes.applied");
  return static_cast<NodeId>(node_labels_.size() - 1);
}

Result<bool> DeltaStore::InsertEdge(NodeId from, NodeId to,
                                    std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= node_labels_.size() || to >= node_labels_.size()) {
    return Status::InvalidArgument("insert_edge: no such node");
  }
  bool applied =
      edges_.insert(EdgeKey{from, to, std::string(label)}).second;
  if (applied) {
    ++pending_ops_;
    ++writes_applied_;
    KGQ_COUNTER_INC("serve.writes.applied");
  } else {
    ++writes_noop_;
    KGQ_COUNTER_INC("serve.writes.noop");
  }
  return applied;
}

Result<bool> DeltaStore::DeleteEdge(NodeId from, NodeId to,
                                    std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= node_labels_.size() || to >= node_labels_.size()) {
    return Status::InvalidArgument("delete_edge: no such node");
  }
  bool applied = edges_.erase(EdgeKey{from, to, std::string(label)}) > 0;
  if (applied) {
    ++pending_ops_;
    ++writes_applied_;
    KGQ_COUNTER_INC("serve.writes.applied");
  } else {
    ++writes_noop_;
    KGQ_COUNTER_INC("serve.writes.noop");
  }
  return applied;
}

EpochPtr DeltaStore::MaterializeLocked(uint64_t epoch) const {
  KGQ_SPAN("serve.publish");
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = epoch;
  for (const std::string& label : node_labels_) {
    snap->graph.AddNode(label);
  }
  // std::set iterates in canonical (from, to, label) order, so edge ids
  // — and with them the CSR label interning — depend only on the
  // logical edge set, never on the insert/delete history.
  for (const EdgeKey& e : edges_) {
    snap->graph.AddEdge(e.from, e.to, e.label).value();
  }
  const LabeledGraph& g = snap->graph;
  snap->csr = CsrSnapshot::FromLabeledEdges(
      g.topology(), [&g](EdgeId e) { return g.EdgeLabelString(e); });
  return snap;
}

EpochPtr DeltaStore::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  EpochPtr next = MaterializeLocked(epoch_ + 1);
  epoch_ = next->epoch;
  pending_ops_ = 0;
  current_ = next;
  KGQ_GAUGE_SET("serve.epoch", epoch_);
  KGQ_HISTOGRAM_RECORD("serve.publish.edges", edges_.size());
  return next;
}

EpochPtr DeltaStore::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t DeltaStore::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t DeltaStore::NumNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return node_labels_.size();
}

size_t DeltaStore::NumLiveEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

size_t DeltaStore::PendingOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_ops_;
}

uint64_t DeltaStore::WritesApplied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_applied_;
}

uint64_t DeltaStore::WritesNoop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_noop_;
}

std::vector<EdgeKey> DeltaStore::LogicalEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<EdgeKey>(edges_.begin(), edges_.end());
}

}  // namespace serve
}  // namespace kgq
