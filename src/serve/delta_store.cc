#include "serve/delta_store.h"

#include <utility>

#include "obs/obs.h"

namespace kgq {
namespace serve {

const LabeledGraph& EpochSnapshot::graph() const {
  std::call_once(lazy_graph->once, [this] {
    auto g = std::make_unique<LabeledGraph>();
    for (NodeId n = 0; n < nodes.size; ++n) g->AddNode(nodes.label(n));
    // CSR edge ids are canonical, so AddEdge interning order — and with
    // it the whole graph — matches the from-scratch materialization.
    for (EdgeId e = 0; e < csr->num_edges(); ++e) {
      g->AddEdge(csr->EdgeSource(e), csr->EdgeTarget(e),
                 csr->LabelName(csr->EdgeLabel(e)))
          .value();
    }
    lazy_graph->graph = std::move(g);
  });
  return *lazy_graph->graph;
}

DeltaStore::DeltaStore(DeltaStoreOptions options) : options_(options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = 0;
  snap->content_version = 0;
  snap->nodes = NodeViewLocked();
  snap->csr = FullCsrLocked(snap.get());
  snap->node_label_counts =
      std::make_shared<const std::map<std::string, size_t>>();
  current_ = std::move(snap);
}

NodeId DeltaStore::AddNode(std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_nodes_ % kNodeChunk == 0) {
    // Full-capacity chunks from the start: a published view's chunk
    // pointers never see a reallocation, only slot writes that the
    // publish mutex already ordered before the view existed.
    node_chunks_.push_back(
        std::make_shared<std::vector<std::string>>(kNodeChunk));
  }
  (*node_chunks_.back())[num_nodes_ % kNodeChunk] = std::string(label);
  ++node_label_counts_[std::string(label)];
  ++num_nodes_;
  ++pending_ops_;
  ++writes_applied_;
  KGQ_COUNTER_INC("serve.writes.applied");
  return static_cast<NodeId>(num_nodes_ - 1);
}

Result<bool> DeltaStore::InsertEdge(NodeId from, NodeId to,
                                    std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= num_nodes_ || to >= num_nodes_) {
    return Status::InvalidArgument("insert_edge: no such node");
  }
  EdgeKey key{from, to, std::string(label)};
  bool applied = edges_.insert(key).second;
  if (applied) {
    // Net-delta bookkeeping: re-inserting an edge deleted earlier this
    // epoch cancels the pending delete (state is back to the base
    // epoch's); otherwise this is a pending insert.
    auto it = delta_.find(key);
    if (it != delta_.end()) {
      delta_.erase(it);
    } else {
      delta_.emplace(std::move(key), true);
    }
    ++pending_ops_;
    ++writes_applied_;
    KGQ_COUNTER_INC("serve.writes.applied");
  } else {
    ++writes_noop_;
    KGQ_COUNTER_INC("serve.writes.noop");
  }
  return applied;
}

Result<bool> DeltaStore::DeleteEdge(NodeId from, NodeId to,
                                    std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= num_nodes_ || to >= num_nodes_) {
    return Status::InvalidArgument("delete_edge: no such node");
  }
  EdgeKey key{from, to, std::string(label)};
  bool applied = edges_.erase(key) > 0;
  if (applied) {
    auto it = delta_.find(key);
    if (it != delta_.end()) {
      delta_.erase(it);  // Deleting an intra-epoch insert: full cancel.
    } else {
      delta_.emplace(std::move(key), false);
    }
    ++pending_ops_;
    ++writes_applied_;
    KGQ_COUNTER_INC("serve.writes.applied");
  } else {
    ++writes_noop_;
    KGQ_COUNTER_INC("serve.writes.noop");
  }
  return applied;
}

NodeTableView DeltaStore::NodeViewLocked() const {
  NodeTableView view;
  view.chunks.assign(node_chunks_.begin(), node_chunks_.end());
  view.size = num_nodes_;
  return view;
}

std::shared_ptr<const CsrSnapshot> DeltaStore::FullCsrLocked(
    EpochSnapshot* snap) const {
  auto graph = std::make_unique<LabeledGraph>();
  for (size_t c = 0, n = 0; n < num_nodes_; ++c) {
    const std::vector<std::string>& chunk = *node_chunks_[c];
    for (size_t i = 0; i < kNodeChunk && n < num_nodes_; ++i, ++n) {
      graph->AddNode(chunk[i]);
    }
  }
  // std::set iterates in canonical (from, to, label) order, so edge ids
  // — and with them the CSR label interning — depend only on the
  // logical edge set, never on the insert/delete history.
  for (const EdgeKey& e : edges_) {
    graph->AddEdge(e.from, e.to, e.label).value();
  }
  const LabeledGraph& g = *graph;
  auto csr = std::make_shared<CsrSnapshot>(CsrSnapshot::FromLabeledEdges(
      g.topology(), [&g](EdgeId e) { return g.EdgeLabelString(e); }));
  // The full path already paid for the graph: seed the lazy cell.
  std::call_once(snap->lazy_graph->once, [&] {
    snap->lazy_graph->graph = std::move(graph);
  });
  return csr;
}

EpochPtr DeltaStore::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  KGQ_SPAN("serve.publish");
  const EpochSnapshot& prev = *current_;
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = epoch_ + 1;
  snap->nodes = NodeViewLocked();
  snap->delta.has_base = true;
  snap->delta.base_epoch = prev.epoch;
  snap->delta.nodes_added = num_nodes_ - base_nodes_;
  for (const auto& [key, is_insert] : delta_) {
    (is_insert ? snap->delta.inserted : snap->delta.deleted)
        .push_back({key.from, key.to, key.label});
  }
  std::set<std::string_view> dirty_labels;
  for (const auto& [key, is_insert] : delta_) dirty_labels.insert(key.label);

  const bool content_changed = !delta_.empty() || num_nodes_ != base_nodes_;
  if (!content_changed) {
    // Empty net delta: the epoch number bumps but every materialized
    // artifact — CSR, node-label stats, even an already-built graph —
    // is shared wholesale.
    snap->content_version = prev.content_version;
    snap->csr = prev.csr;
    snap->node_label_counts = prev.node_label_counts;
    snap->lazy_graph = prev.lazy_graph;
  } else {
    snap->content_version = prev.content_version + 1;
    snap->node_label_counts =
        num_nodes_ != base_nodes_
            ? std::make_shared<const std::map<std::string, size_t>>(
                  node_label_counts_)
            : prev.node_label_counts;
    if (options_.incremental_publish) {
      snap->csr = std::make_shared<CsrSnapshot>(CsrSnapshot::ApplyCanonicalDelta(
          *prev.csr, num_nodes_, snap->delta.inserted, snap->delta.deleted));
    } else {
      snap->csr = FullCsrLocked(snap.get());
    }
  }

  // Dirty labels are counted per net-delta, so the histogram is the
  // "how partitioned was this publish" signal the view cache's label
  // reuse rides on. Labels whose net delta cancelled out count 0.
  KGQ_HISTOGRAM_RECORD("serve.publish.dirty_labels", dirty_labels.size());

  epoch_ = snap->epoch;
  base_nodes_ = num_nodes_;
  delta_.clear();
  pending_ops_ = 0;
  current_ = snap;
  KGQ_GAUGE_SET("serve.epoch", epoch_);
  KGQ_HISTOGRAM_RECORD("serve.publish.edges", edges_.size());
  return current_;
}

EpochPtr DeltaStore::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t DeltaStore::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t DeltaStore::NumNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_nodes_;
}

size_t DeltaStore::NumLiveEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

size_t DeltaStore::PendingOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_ops_;
}

uint64_t DeltaStore::WritesApplied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_applied_;
}

uint64_t DeltaStore::WritesNoop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_noop_;
}

std::vector<EdgeKey> DeltaStore::LogicalEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<EdgeKey>(edges_.begin(), edges_.end());
}

}  // namespace serve
}  // namespace kgq
