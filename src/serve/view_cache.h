#ifndef KGQ_SERVE_VIEW_CACHE_H_
#define KGQ_SERVE_VIEW_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "analytics/components.h"
#include "pathalg/matrix_rpq.h"
#include "serve/delta_store.h"
#include "util/thread_pool.h"

namespace kgq {
namespace serve {

/// Per-epoch materialized analytics views with delta-based maintenance.
///
/// Each view is computed lazily on first request against an epoch and
/// cached together with the EpochPtr it was computed at. When a request
/// arrives for a *newer* epoch whose EpochDelta is based on the cached
/// epoch, the view is advanced from its previous value instead of
/// recomputed:
///
///   * components — union-find over the inserted edges seeded with the
///     previous assignment, then a canonical relabel (discovery order ==
///     ascending minimum node id). Any deleted edge forces a full
///     recompute (WeaklyConnectedComponentsCsr) — counted as fallback.
///   * pagerank — integer fixed-point PageRank warm-restarted from the
///     previous epoch's vector via the provable damage bound
///     (PageRankFixpointWarm); handles deletes without fallback. The
///     kernel histograms pagerank.warm_iterations per epoch.
///   * reachability — per-label positive-length transitive closure
///     R = A⁺ as a BoolCsr keyed by label *spelling* (dense label ids
///     shift across epochs). Labels untouched by the delta carry their
///     closure over by pointer — the per-label partition reuse; labels
///     with only inserts advance by delta-SpGEMM over the frontier of
///     new facts (BoolSpGemmDelta); labels with deletes recompute.
///
/// Every maintained value is bit-identical to the from-scratch
/// computation at the same epoch (the view differential suite pins
/// this), so hit/advance/rebuild is invisible in responses.
///
/// obs: counters serve.view.hit (value already current, including
/// untouched-label carries), serve.view.advance (delta-maintained),
/// serve.view.rebuild (computed from scratch), serve.view.fallback
/// (delete-forced or cap-forced recompute).
///
/// Thread-safe; one mutex serializes view maintenance (requests for a
/// current value still pay only a map lookup + shared_ptr copy).
class ViewCache {
 public:
  explicit ViewCache(ParallelOptions parallel = {})
      : parallel_(parallel) {}

  /// Weakly connected components of `snap`'s graph. Component ids are
  /// discovery-order (the id of a component is the rank of its minimum
  /// node id), identical to WeaklyConnectedComponents on the epoch's
  /// materialized graph.
  std::shared_ptr<const ComponentAssignment> Components(const EpochPtr& snap);

  /// Integer fixed-point PageRank (kPageRankScale units); the canonical
  /// least-fixpoint value of the epoch's graph.
  std::shared_ptr<const std::vector<int64_t>> PageRank(const EpochPtr& snap);

  /// Positive-length reachability closure R = A⁺ of `label`'s adjacency
  /// at `snap`'s epoch. A label with no edges yields the empty matrix.
  std::shared_ptr<const BoolCsr> Reachability(const EpochPtr& snap,
                                              std::string_view label);

 private:
  struct ComponentsEntry {
    EpochPtr snap;  // epoch the value is current at
    std::shared_ptr<const ComponentAssignment> value;
  };
  struct PageRankEntry {
    EpochPtr snap;
    std::shared_ptr<const std::vector<int64_t>> value;
  };
  struct ReachEntry {
    EpochPtr snap;
    std::shared_ptr<const BoolCsr> closure;
  };

  /// True when `snap` carries a delta based exactly on the cached epoch
  /// (the only window the incremental paths can bridge).
  static bool CanAdvance(const EpochPtr& cached, const EpochPtr& snap);

  ParallelOptions parallel_;
  std::mutex mu_;
  ComponentsEntry components_;
  PageRankEntry pagerank_;
  std::map<std::string, ReachEntry, std::less<>> reach_;
};

}  // namespace serve
}  // namespace kgq

#endif  // KGQ_SERVE_VIEW_CACHE_H_
