#ifndef KGQ_SERVE_DELTA_STORE_H_
#define KGQ_SERVE_DELTA_STORE_H_

#include <compare>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr_snapshot.h"
#include "graph/labeled_graph.h"
#include "util/result.h"

namespace kgq {
namespace serve {

/// One labeled edge of the store's *logical* edge set. The serving data
/// model is a set — not a multiset — of (from, to, label) triples:
/// inserting an edge that is already live is a no-op, and so is deleting
/// one that is not. That is what makes insert/delete logs from different
/// clients commute into one well-defined graph.
struct EdgeKey {
  NodeId from = 0;
  NodeId to = 0;
  std::string label;

  auto operator<=>(const EdgeKey&) const = default;
};

/// Node labels per chunk of the shared node table.
inline constexpr size_t kNodeChunk = 1024;

/// A read-only view of the append-only node table: the chunk pointers
/// plus a size watermark. Chunks are allocated at full size and slots
/// are only written before a publish makes them visible (the store's
/// mutex orders the write before the view's construction), so readers
/// may touch any slot below the watermark without synchronization.
/// Epoch memory cost: one pointer per ~kNodeChunk nodes, shared across
/// every epoch — node labels themselves are never copied per epoch.
struct NodeTableView {
  std::vector<std::shared_ptr<const std::vector<std::string>>> chunks;
  size_t size = 0;  ///< watermark: ids in [0, size) are readable.

  const std::string& label(NodeId n) const {
    return (*chunks[n / kNodeChunk])[n % kNodeChunk];
  }
};

/// The logical change between a snapshot and the epoch it was published
/// from — the input the incremental CSR merge consumed and the view
/// cache replays to advance materialized analytics. Lists are in
/// canonical (from, to, label) order and net: an edge inserted and
/// deleted within one epoch appears in neither.
struct EpochDelta {
  bool has_base = false;  ///< false only for the initial epoch-0 snapshot.
  uint64_t base_epoch = 0;
  std::vector<CsrSnapshot::EdgeRecord> inserted;
  std::vector<CsrSnapshot::EdgeRecord> deleted;
  size_t nodes_added = 0;
};

/// One published version of the graph: an immutable materialization of
/// the logical edge set at publish time, shared by every reader that
/// acquired it. The CSR snapshot carries canonical edge ids (sorted by
/// (from, to, label)), so the whole query stack (planner stats,
/// label-partition scans, matrix RPQ) runs on it unchanged.
///
/// Readers keep the EpochSnapshot alive through a shared_ptr
/// (DeltaStore::Acquire); it is never mutated after construction (the
/// lazily built LabeledGraph is guarded by a once_flag), so a query
/// pinned to an epoch can never observe a torn graph no matter how many
/// writers race ahead of it.
struct EpochSnapshot {
  uint64_t epoch = 0;

  /// Bumps only when the published *content* changed (net edge delta
  /// nonempty or nodes added). Empty publishes advance `epoch` but keep
  /// the content version — the query cache keys on this, so republishing
  /// unchanged data keeps every cached answer.
  uint64_t content_version = 0;

  NodeTableView nodes;
  std::shared_ptr<const CsrSnapshot> csr;
  EpochDelta delta;

  /// Node-label tallies of this epoch (label → count), shared across
  /// epochs until a node is added; the planner's O(1) node-test
  /// selectivity source.
  std::shared_ptr<const std::map<std::string, size_t>> node_label_counts;

  size_t num_nodes() const { return nodes.size; }
  size_t num_edges() const { return csr->num_edges(); }

  /// The materialized LabeledGraph of this epoch — identical to what a
  /// from-scratch canonical build constructs. Built lazily on first use
  /// (the plan compiler and scalar engines need it; the CSR-native
  /// kernels do not), or pre-seeded by the full-rebuild publish path.
  /// Thread-safe; snapshots with identical content share one build.
  const LabeledGraph& graph() const;

  /// Shared lazy cell so content-identical epochs (empty publishes)
  /// reuse one graph build.
  struct LazyGraph {
    std::once_flag once;
    std::unique_ptr<const LabeledGraph> graph;
  };
  std::shared_ptr<LazyGraph> lazy_graph = std::make_shared<LazyGraph>();
};

using EpochPtr = std::shared_ptr<const EpochSnapshot>;

struct DeltaStoreOptions {
  /// Publish via CsrSnapshot::ApplyCanonicalDelta (cost proportional to
  /// the delta plus the array rewrite; no string interning, no
  /// LabeledGraph build). false = from-scratch materialization, kept as
  /// the differential reference path.
  bool incremental_publish = true;
};

/// The write path of the serving layer: a mutable node table plus an
/// edge delta log (insert/delete) with epoch-based publication.
///
/// Writes mutate only the store's private state; queries never see them.
/// Publish() materializes the current logical edge set into a fresh
/// EpochSnapshot and swaps it in atomically — readers acquire the
/// current epoch with one shared_ptr copy and keep it for the whole
/// query, so they never block on writers and writers never wait for
/// readers (old epochs die when their last reader drops them).
///
/// Materialization is *canonical*: nodes in id order, edges sorted by
/// (from, to, label). Two histories with the same logical edge set
/// therefore publish bit-identical snapshots — the property the
/// differential suite (tests/test_delta_store.cc) pins against
/// from-scratch FromLabeledEdges builds.
///
/// Publication is *incremental* by default: the store tracks the net
/// edge delta since the last publish (insert-then-delete of the same key
/// cancels), reuses the previous epoch's CSR wholesale when the net
/// delta is empty and the node table did not grow, and otherwise merges
/// the delta into the previous canonical edge stream — never rebuilding
/// the LabeledGraph or re-interning label strings. The node table is
/// shared append-only (chunk pointers + watermark) rather than copied.
///
/// All public methods are thread-safe; writes are serialized by one
/// mutex (publication included), reads of the current epoch are a
/// pointer copy under the same short lock.
///
/// obs: gauge serve.epoch tracks the latest published epoch; counters
/// serve.writes.applied / serve.writes.noop tally mutations that did /
/// did not change the logical state; span serve.publish covers
/// materialization, histogram serve.publish.edges records the edge
/// count of each published epoch and serve.publish.dirty_labels the
/// number of distinct edge labels touched by its net delta.
class DeltaStore {
 public:
  /// Starts at epoch 0: the empty graph, already published (queries
  /// before the first Publish() see an empty epoch, not an error).
  explicit DeltaStore(DeltaStoreOptions options = {});

  /// Adds a node labeled `label`; returns its id. Nodes are append-only
  /// (ids are dense and never reused) and become queryable at the next
  /// Publish().
  NodeId AddNode(std::string_view label);

  /// Logs the insertion of edge (from, to, label). Returns true when
  /// the edge was absent (the logical set changed), false for a
  /// duplicate insert (no-op). Fails if an endpoint does not exist.
  Result<bool> InsertEdge(NodeId from, NodeId to, std::string_view label);

  /// Logs the deletion of edge (from, to, label). Returns true when the
  /// edge was live (the logical set changed), false when it was absent
  /// (no-op). Fails if an endpoint does not exist.
  Result<bool> DeleteEdge(NodeId from, NodeId to, std::string_view label);

  /// Materializes the current logical state as epoch N+1 and publishes
  /// it. Returns the new epoch's snapshot.
  EpochPtr Publish();

  /// The current published epoch — one shared_ptr copy; never blocks on
  /// writers beyond the pointer swap itself.
  EpochPtr Acquire() const;

  /// Epoch number of the latest published snapshot.
  uint64_t CurrentEpoch() const;

  /// Unpublished state introspection (nodes include pending ones).
  size_t NumNodes() const;
  size_t NumLiveEdges() const;
  /// Applied delta operations (node adds + effective inserts/deletes)
  /// since the last Publish(). Counts operations, not net effect: an
  /// insert cancelled by a later delete still counted two ops.
  size_t PendingOps() const;

  /// Per-instance lifetime write tallies: mutations that changed /
  /// did not change the logical state since construction (the numbers
  /// behind the "stats" response; the serve.writes.* registry counters
  /// are process-global and mix every store in the process).
  uint64_t WritesApplied() const;
  uint64_t WritesNoop() const;

  /// The logical edge set in canonical (from, to, label) order — what
  /// the next Publish() will materialize. Test/debug surface.
  std::vector<EdgeKey> LogicalEdges() const;

 private:
  /// From-scratch canonical materialization (LabeledGraph +
  /// FromLabeledEdges), pre-seeding the snapshot's lazy graph. Caller
  /// holds mu_.
  std::shared_ptr<const CsrSnapshot> FullCsrLocked(
      EpochSnapshot* snap) const;

  /// Read-only view of the node table at the current watermark. Caller
  /// holds mu_.
  NodeTableView NodeViewLocked() const;

  DeltaStoreOptions options_;

  mutable std::mutex mu_;
  /// Append-only chunked node table: chunks are allocated at kNodeChunk
  /// capacity up front so published views never observe a reallocation.
  std::vector<std::shared_ptr<std::vector<std::string>>> node_chunks_;
  size_t num_nodes_ = 0;
  std::map<std::string, size_t> node_label_counts_;

  std::set<EdgeKey> edges_;
  /// Net edge changes since the last publish: true = insert, false =
  /// delete; cancelling pairs are dropped as they happen. std::map keeps
  /// canonical order for free.
  std::map<EdgeKey, bool> delta_;
  size_t base_nodes_ = 0;  ///< node watermark at the last publish

  size_t pending_ops_ = 0;
  uint64_t writes_applied_ = 0;
  uint64_t writes_noop_ = 0;
  uint64_t epoch_ = 0;
  EpochPtr current_;
};

}  // namespace serve
}  // namespace kgq

#endif  // KGQ_SERVE_DELTA_STORE_H_
