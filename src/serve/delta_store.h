#ifndef KGQ_SERVE_DELTA_STORE_H_
#define KGQ_SERVE_DELTA_STORE_H_

#include <compare>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr_snapshot.h"
#include "graph/labeled_graph.h"
#include "util/result.h"

namespace kgq {
namespace serve {

/// One labeled edge of the store's *logical* edge set. The serving data
/// model is a set — not a multiset — of (from, to, label) triples:
/// inserting an edge that is already live is a no-op, and so is deleting
/// one that is not. That is what makes insert/delete logs from different
/// clients commute into one well-defined graph.
struct EdgeKey {
  NodeId from = 0;
  NodeId to = 0;
  std::string label;

  auto operator<=>(const EdgeKey&) const = default;
};

/// One published version of the graph: an immutable materialization of
/// the logical edge set at publish time, shared by every reader that
/// acquired it. The CSR snapshot is built with
/// CsrSnapshot::FromLabeledEdges over the materialized graph, so the
/// whole query stack (planner stats, label-partition scans, matrix RPQ)
/// runs on it unchanged.
///
/// Readers keep the EpochSnapshot alive through a shared_ptr
/// (DeltaStore::Acquire); it is never mutated after construction, so a
/// query pinned to an epoch can never observe a torn graph no matter how
/// many writers race ahead of it.
struct EpochSnapshot {
  uint64_t epoch = 0;
  LabeledGraph graph;
  CsrSnapshot csr;
};

using EpochPtr = std::shared_ptr<const EpochSnapshot>;

/// The write path of the serving layer: a mutable node table plus an
/// edge delta log (insert/delete) with epoch-based publication.
///
/// Writes mutate only the store's private state; queries never see them.
/// Publish() materializes the current logical edge set into a fresh
/// EpochSnapshot and swaps it in atomically — readers acquire the
/// current epoch with one shared_ptr copy and keep it for the whole
/// query, so they never block on writers and writers never wait for
/// readers (old epochs die when their last reader drops them).
///
/// Materialization is *canonical*: nodes in id order, edges sorted by
/// (from, to, label). Two histories with the same logical edge set
/// therefore publish bit-identical snapshots — the property the
/// differential suite (tests/test_delta_store.cc) pins against
/// from-scratch FromLabeledEdges builds.
///
/// All public methods are thread-safe; writes are serialized by one
/// mutex (publication included), reads of the current epoch are a
/// pointer copy under the same short lock.
///
/// obs: gauge serve.epoch tracks the latest published epoch; counters
/// serve.writes.applied / serve.writes.noop tally mutations that did /
/// did not change the logical state; span serve.publish covers
/// materialization and histogram serve.publish.edges records the edge
/// count of each published epoch.
class DeltaStore {
 public:
  /// Starts at epoch 0: the empty graph, already published (queries
  /// before the first Publish() see an empty epoch, not an error).
  DeltaStore();

  /// Adds a node labeled `label`; returns its id. Nodes are append-only
  /// (ids are dense and never reused) and become queryable at the next
  /// Publish().
  NodeId AddNode(std::string_view label);

  /// Logs the insertion of edge (from, to, label). Returns true when
  /// the edge was absent (the logical set changed), false for a
  /// duplicate insert (no-op). Fails if an endpoint does not exist.
  Result<bool> InsertEdge(NodeId from, NodeId to, std::string_view label);

  /// Logs the deletion of edge (from, to, label). Returns true when the
  /// edge was live (the logical set changed), false when it was absent
  /// (no-op). Fails if an endpoint does not exist.
  Result<bool> DeleteEdge(NodeId from, NodeId to, std::string_view label);

  /// Materializes the current logical state as epoch N+1 and publishes
  /// it. Returns the new epoch's snapshot.
  EpochPtr Publish();

  /// The current published epoch — one shared_ptr copy; never blocks on
  /// writers beyond the pointer swap itself.
  EpochPtr Acquire() const;

  /// Epoch number of the latest published snapshot.
  uint64_t CurrentEpoch() const;

  /// Unpublished state introspection (nodes include pending ones).
  size_t NumNodes() const;
  size_t NumLiveEdges() const;
  /// Applied delta operations (node adds + effective inserts/deletes)
  /// since the last Publish().
  size_t PendingOps() const;

  /// Per-instance lifetime write tallies: mutations that changed /
  /// did not change the logical state since construction (the numbers
  /// behind the "stats" response; the serve.writes.* registry counters
  /// are process-global and mix every store in the process).
  uint64_t WritesApplied() const;
  uint64_t WritesNoop() const;

  /// The logical edge set in canonical (from, to, label) order — what
  /// the next Publish() will materialize. Test/debug surface.
  std::vector<EdgeKey> LogicalEdges() const;

 private:
  /// Builds the canonical materialization of the current state. Caller
  /// holds mu_.
  EpochPtr MaterializeLocked(uint64_t epoch) const;

  mutable std::mutex mu_;
  std::vector<std::string> node_labels_;
  std::set<EdgeKey> edges_;
  size_t pending_ops_ = 0;
  uint64_t writes_applied_ = 0;
  uint64_t writes_noop_ = 0;
  uint64_t epoch_ = 0;
  EpochPtr current_;
};

}  // namespace serve
}  // namespace kgq

#endif  // KGQ_SERVE_DELTA_STORE_H_
