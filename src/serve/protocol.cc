#include "serve/protocol.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace kgq {
namespace serve {

namespace {

/// Recursive-descent JSON parser over one bounded string_view. All
/// errors are Status values; nothing throws and nothing reads past
/// end_. Built for hostile input: depth-limited, length-limited by the
/// caller, strict about trailing garbage.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    KGQ_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth >= kMaxJsonDepth) {
      return Status::OutOfRange("JSON nesting too deep");
    }
    SkipSpace();
    if (AtEnd()) return Status::ParseError("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() != '"') {
        return Status::ParseError("expected object key");
      }
      std::string key;
      KGQ_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (AtEnd() || Peek() != ':') {
        return Status::ParseError("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      KGQ_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (AtEnd()) return Status::ParseError("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      return Status::ParseError("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue item;
      KGQ_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->items.push_back(std::move(item));
      SkipSpace();
      if (AtEnd()) return Status::ParseError("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      return Status::ParseError("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (AtEnd()) return Status::ParseError("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) {
        return Status::ParseError("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (AtEnd()) return Status::ParseError("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          KGQ_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Status::ParseError("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            KGQ_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Status::ParseError("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Status::ParseError("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Status::ParseError("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Status::ParseError("truncated \\u escape");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::ParseError("invalid hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseBool(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    return Status::ParseError("invalid literal");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Status::ParseError("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    const size_t first_digit = pos_;
    bool digits = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
      digits = true;
    }
    if (pos_ - first_digit > 1 && text_[first_digit] == '0') {
      return Status::ParseError("leading zero in number");
    }
    bool integral = true;
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos_;
      bool frac = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        frac = true;
      }
      if (!frac) return Status::ParseError("digits expected after '.'");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      bool exp = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        exp = true;
      }
      if (!exp) return Status::ParseError("digits expected in exponent");
    }
    if (!digits) return Status::ParseError("invalid number");
    std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Status::ParseError("unparseable number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    // Exact-integer window is (-2^53, 2^53): at 2^53 itself adjacent
    // integers collide, so ids that large are rejected as inexact.
    out->number_is_int =
        integral && value > -9007199254740992.0 && value < 9007199254740992.0;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Fetches a required/optional member with type checking. Returns
/// nullptr + error status via `*st` when missing or mistyped.
const JsonValue* Member(const JsonValue& obj, std::string_view key,
                        JsonValue::Kind kind, bool required, Status* st) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    if (required) {
      *st = Status::InvalidArgument("missing field \"" + std::string(key) +
                                    "\"");
    }
    return nullptr;
  }
  if (v->kind != kind) {
    *st = Status::InvalidArgument("field \"" + std::string(key) +
                                  "\" has the wrong type");
    return nullptr;
  }
  return v;
}

/// Converts a JSON number member to an unsigned integer ≤ `max`.
Status ToUint(const JsonValue& v, std::string_view key, uint64_t max,
              uint64_t* out) {
  if (!v.number_is_int || v.number < 0 ||
      v.number > static_cast<double>(max)) {
    return Status::InvalidArgument("field \"" + std::string(key) +
                                   "\" must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(v.number);
  return Status::OK();
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  if (text.size() > kMaxRequestBytes) {
    return Status::OutOfRange("request line exceeds " +
                              std::to_string(kMaxRequestBytes) + " bytes");
  }
  return JsonParser(text).Parse();
}

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kAddNode: return "add_node";
    case RequestOp::kInsertEdge: return "insert_edge";
    case RequestOp::kDeleteEdge: return "delete_edge";
    case RequestOp::kPublish: return "publish";
    case RequestOp::kQuery: return "query";
    case RequestOp::kExplain: return "explain";
    case RequestOp::kStats: return "stats";
    case RequestOp::kMetrics: return "metrics";
    case RequestOp::kAnalytics: return "analytics";
  }
  return "?";
}

const char* QueryLangName(QueryLang lang) {
  switch (lang) {
    case QueryLang::kMatch: return "match";
    case QueryLang::kCrpq: return "crpq";
    case QueryLang::kBgp: return "bgp";
  }
  return "?";
}

Status ParseRequestLine(std::string_view line, Request* out) {
  *out = Request();
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& obj = *parsed;
  if (obj.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  // Recover the id first so even later validation errors echo it.
  Status st = Status::OK();
  if (const JsonValue* id =
          Member(obj, "id", JsonValue::Kind::kNumber, false, &st)) {
    KGQ_RETURN_IF_ERROR(ToUint(*id, "id", ~0ull >> 1, &out->id));
    out->has_id = true;
  }
  KGQ_RETURN_IF_ERROR(st);

  const JsonValue* op =
      Member(obj, "op", JsonValue::Kind::kString, true, &st);
  KGQ_RETURN_IF_ERROR(st);
  const std::string& name = op->string;
  if (name == "add_node") {
    out->op = RequestOp::kAddNode;
  } else if (name == "insert_edge") {
    out->op = RequestOp::kInsertEdge;
  } else if (name == "delete_edge") {
    out->op = RequestOp::kDeleteEdge;
  } else if (name == "publish") {
    out->op = RequestOp::kPublish;
  } else if (name == "query") {
    out->op = RequestOp::kQuery;
  } else if (name == "explain") {
    out->op = RequestOp::kExplain;
  } else if (name == "stats") {
    out->op = RequestOp::kStats;
  } else if (name == "metrics") {
    out->op = RequestOp::kMetrics;
  } else if (name == "analytics") {
    out->op = RequestOp::kAnalytics;
  } else {
    return Status::InvalidArgument("unknown op \"" + name + "\"");
  }

  switch (out->op) {
    case RequestOp::kAddNode: {
      const JsonValue* label =
          Member(obj, "label", JsonValue::Kind::kString, true, &st);
      KGQ_RETURN_IF_ERROR(st);
      out->label = label->string;
      break;
    }
    case RequestOp::kInsertEdge:
    case RequestOp::kDeleteEdge: {
      const JsonValue* from =
          Member(obj, "from", JsonValue::Kind::kNumber, true, &st);
      KGQ_RETURN_IF_ERROR(st);
      const JsonValue* to =
          Member(obj, "to", JsonValue::Kind::kNumber, true, &st);
      KGQ_RETURN_IF_ERROR(st);
      const JsonValue* label =
          Member(obj, "label", JsonValue::Kind::kString, true, &st);
      KGQ_RETURN_IF_ERROR(st);
      uint64_t f = 0, t = 0;
      KGQ_RETURN_IF_ERROR(ToUint(*from, "from", kNoNode - 1, &f));
      KGQ_RETURN_IF_ERROR(ToUint(*to, "to", kNoNode - 1, &t));
      out->from = static_cast<NodeId>(f);
      out->to = static_cast<NodeId>(t);
      out->label = label->string;
      break;
    }
    case RequestOp::kQuery:
    case RequestOp::kExplain: {
      const JsonValue* lang =
          Member(obj, "lang", JsonValue::Kind::kString, true, &st);
      KGQ_RETURN_IF_ERROR(st);
      if (lang->string == "match") {
        out->lang = QueryLang::kMatch;
      } else if (lang->string == "crpq") {
        out->lang = QueryLang::kCrpq;
      } else if (lang->string == "bgp") {
        out->lang = QueryLang::kBgp;
      } else {
        return Status::InvalidArgument("unknown lang \"" + lang->string +
                                       "\" (match, crpq or bgp)");
      }
      const JsonValue* text =
          Member(obj, "text", JsonValue::Kind::kString, true, &st);
      KGQ_RETURN_IF_ERROR(st);
      out->text = text->string;
      if (const JsonValue* threads =
              Member(obj, "threads", JsonValue::Kind::kNumber, false, &st)) {
        uint64_t t = 0;
        KGQ_RETURN_IF_ERROR(ToUint(*threads, "threads", 1024, &t));
        out->threads = static_cast<size_t>(t);
      }
      KGQ_RETURN_IF_ERROR(st);
      if (out->op == RequestOp::kQuery) {
        if (const JsonValue* profile =
                Member(obj, "profile", JsonValue::Kind::kBool, false, &st)) {
          out->profile = profile->boolean;
        }
        KGQ_RETURN_IF_ERROR(st);
      }
      break;
    }
    case RequestOp::kAnalytics: {
      const JsonValue* view =
          Member(obj, "view", JsonValue::Kind::kString, true, &st);
      KGQ_RETURN_IF_ERROR(st);
      if (view->string != "components" && view->string != "pagerank" &&
          view->string != "reach") {
        return Status::InvalidArgument(
            "unknown view \"" + view->string +
            "\" (components, pagerank or reach)");
      }
      out->view = view->string;
      if (const JsonValue* label =
              Member(obj, "label", JsonValue::Kind::kString, false, &st)) {
        out->label = label->string;
      }
      KGQ_RETURN_IF_ERROR(st);
      if (out->view == "reach" && obj.Find("label") == nullptr) {
        return Status::InvalidArgument("view \"reach\" requires \"label\"");
      }
      if (const JsonValue* node =
              Member(obj, "node", JsonValue::Kind::kNumber, false, &st)) {
        uint64_t n = 0;
        KGQ_RETURN_IF_ERROR(ToUint(*node, "node", kNoNode - 1, &n));
        out->node = static_cast<NodeId>(n);
        out->has_node = true;
      }
      KGQ_RETURN_IF_ERROR(st);
      if (const JsonValue* top =
              Member(obj, "top", JsonValue::Kind::kNumber, false, &st)) {
        KGQ_RETURN_IF_ERROR(ToUint(*top, "top", 1 << 20, &out->top));
        if (out->top == 0) {
          return Status::InvalidArgument("\"top\" must be positive");
        }
      }
      KGQ_RETURN_IF_ERROR(st);
      if (out->view == "pagerank" && !out->has_node && out->top == 0) {
        return Status::InvalidArgument(
            "view \"pagerank\" requires \"node\" or \"top\"");
      }
      break;
    }
    case RequestOp::kPublish:
    case RequestOp::kStats:
    case RequestOp::kMetrics:
      break;
  }
  return Status::OK();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

namespace {

/// Opens a response line: `{"id":N,"ok":...` or `{"ok":...`.
std::string Open(const Request& req, bool ok) {
  std::string out = "{";
  if (req.has_id) {
    out += "\"id\":";
    out += std::to_string(req.id);
    out += ',';
  }
  out += ok ? "\"ok\":true" : "\"ok\":false";
  return out;
}

}  // namespace

std::string RenderError(const Request& req, const Status& status) {
  std::string out = Open(req, false);
  out += ",\"code\":";
  AppendJsonString(&out, StatusCodeName(status.code()));
  out += ",\"error\":";
  AppendJsonString(&out, status.message());
  out += '}';
  return out;
}

std::string RenderNode(const Request& req, NodeId node) {
  std::string out = Open(req, true);
  out += ",\"node\":";
  out += std::to_string(node);
  out += '}';
  return out;
}

std::string RenderApplied(const Request& req, bool applied) {
  std::string out = Open(req, true);
  out += ",\"applied\":";
  out += applied ? "true" : "false";
  out += '}';
  return out;
}

std::string RenderPublish(const Request& req, uint64_t epoch, size_t nodes,
                          size_t edges) {
  std::string out = Open(req, true);
  out += ",\"epoch\":";
  out += std::to_string(epoch);
  out += ",\"nodes\":";
  out += std::to_string(nodes);
  out += ",\"edges\":";
  out += std::to_string(edges);
  out += '}';
  return out;
}

std::string RenderStats(const Request& req, const StatsBody& stats) {
  std::string out = Open(req, true);
  out += ",\"epoch\":";
  out += std::to_string(stats.epoch);
  out += ",\"nodes\":";
  out += std::to_string(stats.nodes);
  out += ",\"edges\":";
  out += std::to_string(stats.edges);
  out += ",\"pending\":";
  out += std::to_string(stats.pending);
  out += ",\"cache_hits\":";
  out += std::to_string(stats.cache_hits);
  out += ",\"cache_misses\":";
  out += std::to_string(stats.cache_misses);
  out += ",\"cache_size\":";
  out += std::to_string(stats.cache_size);
  out += ",\"writes_applied\":";
  out += std::to_string(stats.writes_applied);
  out += ",\"writes_noop\":";
  out += std::to_string(stats.writes_noop);
  // Wall-clock fields last; goldens normalize everything `_ns`-suffixed.
  out += ",\"p50_ns\":";
  out += std::to_string(stats.p50_ns);
  out += ",\"p99_ns\":";
  out += std::to_string(stats.p99_ns);
  out += '}';
  return out;
}

std::string RenderMetrics(const Request& req, const MetricsBody& metrics) {
  std::string out = Open(req, true);
  out += ",\"epoch\":";
  out += std::to_string(metrics.epoch);
  out += ",\"latency\":{\"samples\":";
  out += std::to_string(metrics.samples);
  out += ",\"p50_ns\":";
  out += std::to_string(metrics.p50_ns);
  out += ",\"p95_ns\":";
  out += std::to_string(metrics.p95_ns);
  out += ",\"p99_ns\":";
  out += std::to_string(metrics.p99_ns);
  out += "},\"metrics\":";
  out += metrics.registry_json;
  out += '}';
  return out;
}

std::string RenderAnalytics(const Request& req, const AnalyticsBody& body) {
  std::string out = Open(req, true);
  out += ",\"epoch\":";
  out += std::to_string(body.epoch);
  out += ",\"view\":";
  AppendJsonString(&out, body.view);
  if (body.view == "components") {
    out += ",\"num_components\":";
    out += std::to_string(body.num_components);
    if (body.has_node) {
      out += ",\"node\":";
      out += std::to_string(body.node);
      out += ",\"component\":";
      out += std::to_string(body.component);
    }
  } else if (body.view == "pagerank") {
    if (body.has_node) {
      out += ",\"node\":";
      out += std::to_string(body.node);
      out += ",\"rank\":";
      out += std::to_string(body.rank);
    }
    if (body.has_top) {
      out += ",\"top\":[";
      for (size_t i = 0; i < body.top.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"node\":";
        out += std::to_string(body.top[i].first);
        out += ",\"rank\":";
        out += std::to_string(body.top[i].second);
        out += '}';
      }
      out += ']';
    }
  } else {  // reach
    out += ",\"label\":";
    AppendJsonString(&out, body.label);
    if (body.has_node) {
      out += ",\"node\":";
      out += std::to_string(body.node);
      out += ",\"count\":";
      out += std::to_string(body.reach_nodes.size());
      out += ",\"nodes\":[";
      for (size_t i = 0; i < body.reach_nodes.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(body.reach_nodes[i]);
      }
      out += ']';
    } else {
      out += ",\"nnz\":";
      out += std::to_string(body.nnz);
    }
  }
  out += '}';
  return out;
}

void AppendProfileNode(std::string* out, const obs::ProfileNode& node) {
  *out += "{\"op\":";
  AppendJsonString(out, node.kind);
  if (!node.engine.empty()) {
    *out += ",\"engine\":";
    AppendJsonString(out, node.engine);
  }
  *out += ",\"rows_in\":";
  *out += std::to_string(node.rows_in);
  *out += ",\"rows_out\":";
  *out += std::to_string(node.rows_out);
  *out += ",\"time_ns\":";
  *out += std::to_string(node.time_ns);
  *out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ',';
    AppendProfileNode(out, *node.children[i]);
  }
  *out += "]}";
}

std::string RenderAnswer(const Request& req, const QueryAnswer& answer) {
  std::string out = Open(req, true);
  out += ",\"epoch\":";
  out += std::to_string(answer.epoch);
  out += ",\"cached\":";
  out += answer.cached ? "true" : "false";
  out += ",\"columns\":[";
  for (size_t i = 0; i < answer.columns.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(&out, answer.columns[i]);
  }
  out += "],\"rows\":[";
  for (size_t i = 0; i < answer.rows.size(); ++i) {
    if (i > 0) out += ',';
    out += '[';
    for (size_t j = 0; j < answer.rows[i].size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(answer.rows[i][j]);
    }
    out += ']';
  }
  out += ']';
  if (req.profile) {
    // The member is always present on a profiled request, so clients
    // can rely on its shape; null means "no tree was captured" (obs
    // off, or a cache hit on an unprofiled computation).
    out += ",\"profile\":";
    if (answer.profile != nullptr) {
      AppendProfileNode(&out, *answer.profile);
    } else {
      out += "null";
    }
  }
  out += '}';
  return out;
}

std::string RenderExplain(const Request& req, uint64_t epoch,
                          const std::string& plan) {
  std::string out = Open(req, true);
  out += ",\"epoch\":";
  out += std::to_string(epoch);
  out += ",\"plan\":";
  AppendJsonString(&out, plan);
  out += '}';
  return out;
}

}  // namespace serve
}  // namespace kgq
