// A knowledge graph end to end (the Section 2.3 lifecycle): represent
// (load Turtle), integrate (merge documents + ontology), produce
// knowledge three ways — RDFS reasoning, declarative MATCH querying over
// the inferred graph, and embedding-based completion of missing facts.
//
// Run: ./build/examples/knowledge_pipeline

#include <iostream>

#include "embed/transe.h"
#include "query/match_query.h"
#include "rdf/rdf_view.h"
#include "rdf/rdfs.h"
#include "rdf/turtle.h"

int main() {
  using namespace kgq;

  // ---- Represent: two documents, one graph -------------------------------
  TripleStore kg;
  const char* transport_doc =
      "# transport facts\n"
      "juan rides bus1 .\n"
      "rosa rides bus1 .\n"
      "ana  rides tram7 .\n"
      "pedro rides bus1 .\n"
      "transSur owns bus1 .\n"
      "transSur owns tram7 .\n";
  const char* ontology_doc =
      "# a tiny transport ontology\n"
      "rides rdfs:domain Person .\n"
      "rides rdfs:range Vehicle .\n"
      "owns  rdfs:domain Company .\n"
      "Bus  rdfs:subClassOf Vehicle .\n"
      "bus1 rdf:type Bus .\n"
      "pedro rdf:type Infected .\n";
  if (!LoadTurtle(transport_doc, &kg).ok() ||
      !LoadTurtle(ontology_doc, &kg).ok()) {
    std::cerr << "failed to load documents\n";
    return 1;
  }
  std::cout << "Loaded " << kg.size() << " asserted triples\n";

  // ---- Produce: RDFS materialization -------------------------------------
  size_t derived = MaterializeRdfs(&kg);
  std::cout << "RDFS inference derived " << derived
            << " new triples (e.g. juan rdf:type Person: "
            << (kg.Contains("juan", "rdf:type", "Person") ? "yes" : "no")
            << ", bus1 rdf:type Vehicle: "
            << (kg.Contains("bus1", "rdf:type", "Vehicle") ? "yes" : "no")
            << ")\n\n";

  // ---- Query the *inferred* graph declaratively --------------------------
  RdfGraphView view(kg);
  Result<QueryResult> who = RunMatch(
      view,
      "MATCH (x: Person) -[ rides/rides^- ]-> (y: Infected) RETURN x");
  if (!who.ok()) {
    std::cerr << who.status() << "\n";
    return 1;
  }
  std::cout << "Persons who shared a vehicle with an infected person:\n";
  for (const auto& row : who->rows) {
    std::cout << "  " << view.TermOf(row[0]) << "\n";
  }

  // ---- Complete: embeddings predict a plausible missing link -------------
  TransEOptions opts;
  opts.dimension = 16;
  opts.epochs = 300;
  TransEModel model = *TransEModel::Train(kg, opts);
  std::cout << "\nTransE (" << model.num_entities() << " entities, "
            << model.num_relations() << " relations):\n";
  std::cout << "  score(rosa rides bus1)  [asserted]   = "
            << model.Score("rosa", "rides", "bus1") << "\n";
  std::cout << "  score(ana rides bus1)   [unasserted] = "
            << model.Score("ana", "rides", "bus1") << "\n";
  std::cout << "  rank of bus1 as tail of (juan, rides, ?): "
            << model.TailRank("juan", "rides", "bus1") << " of "
            << model.num_entities() << "\n";
  return 0;
}
