// The query planner end to end: write a CRPQ, look at the plan the
// optimizer chose (and the naive textual-order plan it avoided),
// execute it through the unified physical operators, then read the obs
// counters to see what actually happened at runtime.
//
// The query finds authors of highly-connected papers on a rare topic in
// the synthetic DBLP bibliography: the selective atom (the `about` edge
// into the rare keyword) is written *last*, so a textual-order join
// builds the full writes⋈writes intermediate first — the optimizer's
// cardinality estimates flip the order.
//
// Run: ./build/examples/query_planner

#include <cstdio>
#include <iostream>
#include <string>

#include "datasets/dblp_synth.h"
#include "graph/csr_snapshot.h"
#include "graph/graph_view.h"
#include "obs/obs.h"
#include "plan/exec.h"
#include "plan/ir.h"
#include "plan/optimizer.h"
#include "plan/stats.h"
#include "rpq/crpq.h"
#include "util/rng.h"

int main() {
  using namespace kgq;

  // 1. A graph with skew worth optimizing for: the DBLP-synth keyword
  // distribution is ~20x hot-to-rare.
  DblpGraphOptions gopts;
  Rng rng(gopts.seed);
  LabeledGraph g = BuildDblpGraph(gopts, &rng);
  LabeledGraphView view(g);
  CsrSnapshot snap = CsrSnapshot::FromGraph(g);
  std::cout << "DBLP-synth: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges; about[property_graph] is the rare keyword ("
            << "writes=" << snap.LabelFrequency("writes")
            << ", about=" << snap.LabelFrequency("about") << " edges)\n\n";

  // 2. The CRPQ. Datalog-style: head declares the projection, the body
  // conjoins pattern atoms whose edges are regular path expressions.
  const std::string text =
      "q(a1, a2) :- (a1: author) -[ writes ]-> (p), "
      "(a2: author) -[ writes ]-> (p), "
      "(p) -[ about ]-> (k: property_graph)";
  Result<Crpq> q = ParseCrpq(text);
  if (!q.ok()) {
    std::cerr << q.status() << "\n";
    return 1;
  }
  std::cout << "CRPQ:\n  " << q->ToString() << "\n\n";

  // 3. Compile to the shared logical IR and plan it twice: once with
  // every rule off (the textual-order baseline) and once for real.
  Result<ConjunctiveQuery> cq = CompileCrpq(*q);
  GraphStats stats = GraphStats::From(&view, &snap);

  PlannerOptions naive;
  naive.push_filters = false;
  naive.reorder_joins = false;
  naive.edge_scan_fastpath = false;
  Result<LogicalOpPtr> naive_plan = PlanQuery(*cq, stats, naive);
  std::cout << "Naive plan (textual atom order, late filters):\n"
            << ExplainPlan(**naive_plan) << "\n";

  Result<LogicalOpPtr> plan = PlanQuery(*cq, stats, PlannerOptions{});
  std::cout << "Optimized plan (pushdown + greedy reorder + EdgeScan):\n"
            << ExplainPlan(**plan) << "\n";

  // 4. Execute the optimized plan. Counters are zeroed first so the
  // report below covers exactly this one execution.
  obs::Registry::SetEnabled(true);
  obs::Registry::Get().Reset();
  ExecOptions eopts;
  eopts.snapshot = &snap;
  Result<RowSet> rows = ExecutePlan(view, **plan, eopts);
  if (!rows.ok()) {
    std::cerr << rows.status() << "\n";
    return 1;
  }
  std::cout << "Executed: " << rows->rows.size()
            << " coauthor pairs on the rare keyword; first row = ("
            << g.NodeLabelString(rows->rows.front()[0]) << " #"
            << rows->rows.front()[0] << ", "
            << g.NodeLabelString(rows->rows.front()[1]) << " #"
            << rows->rows.front()[1] << ")\n\n";

  // 5. What the operators did, from the obs registry. plan.rows.* count
  // rows *produced* per operator kind — the whole point of the
  // optimizer is to shrink the hash_join number.
  const obs::Registry& reg = obs::Registry::Get();
  std::cout << "Rows produced per operator kind:\n";
  for (const char* kind : {"node_scan", "edge_scan", "path_atom", "hash_join",
                           "filter", "project"}) {
    std::printf("  plan.rows.%-10s %8llu\n", kind,
                static_cast<unsigned long long>(
                    reg.CounterValue(std::string("plan.rows.") + kind)));
  }
  std::printf("  label-partition entries scanned: %llu\n",
              static_cast<unsigned long long>(
                  reg.CounterValue("plan.scan.label_partition_entries")));
  if (const obs::Histogram* h = reg.FindHistogram("plan.join.build_rows")) {
    std::printf("  hash-join build sides: %llu joins, mean %.0f rows, "
                "max %llu rows\n",
                static_cast<unsigned long long>(h->Count()), h->Mean(),
                static_cast<unsigned long long>(h->Max()));
  }
  return 0;
}
