// Section 4.2's "global properties" toolbox on one synthetic city:
// components, diameter, clustering, cores, triangles, communities, and
// four centrality notions side by side — including the paper's
// regex-constrained bc_r, which is the only one that knows what the
// labels *mean*.
//
// Run: ./build/examples/analytics_tour [num_people]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analytics/betweenness.h"
#include "analytics/centrality_extra.h"
#include "analytics/clustering.h"
#include "analytics/components.h"
#include "analytics/densest.h"
#include "analytics/pagerank.h"
#include "datasets/contact_scenario.h"
#include "graph/graph_view.h"
#include "rpq/parser.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kgq;

  ContactScenarioOptions opts;
  opts.num_people = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  Rng rng(7);
  PropertyGraph city = ContactScenario(opts, &rng);
  const Multigraph& g = city.labeled().topology();

  // ---- Global properties --------------------------------------------------
  auto wcc = WeaklyConnectedComponents(g);
  auto scc = StronglyConnectedComponents(g);
  auto diameter = Diameter(g, EdgeDirection::kUndirected);
  auto cores = CoreNumbers(g);
  uint32_t kmax = *std::max_element(cores.begin(), cores.end());
  auto dense = DensestSubgraphPeel(g);
  Rng comm_rng(13);
  auto communities = LabelPropagationCommunities(g, 30, &comm_rng);
  uint32_t num_comm =
      *std::max_element(communities.begin(), communities.end()) + 1;

  std::printf("City: %zu nodes, %zu edges\n", g.num_nodes(), g.num_edges());
  std::printf("  weak components: %u   strong components: %u\n",
              wcc.num_components, scc.num_components);
  std::printf("  diameter (undirected): %s\n",
              diameter ? std::to_string(*diameter).c_str() : "-");
  std::printf("  avg clustering: %.4f   triangles: %zu\n",
              AverageClusteringCoefficient(g), CountTriangles(g));
  std::printf("  max k-core: %u   densest-subgraph density: %.3f\n", kmax,
              dense.density);
  std::printf("  label-propagation communities: %u\n\n", num_comm);

  // ---- Centralities on the buses -----------------------------------------
  std::vector<double> pr = PageRank(g);
  std::vector<double> bc = BetweennessCentrality(g, EdgeDirection::kUndirected);
  std::vector<double> close = HarmonicCloseness(g, EdgeDirection::kUndirected);
  std::vector<double> eig = EigenvectorCentrality(g);
  PropertyGraphView view(city);
  RegexPtr transport = *ParseRegex("?person/rides/?bus/rides^-/?person");
  BcrOptions bopts;
  bopts.max_path_length = 4;
  Result<std::vector<double>> bcr = RegexBetweenness(view, *transport, bopts);
  if (!bcr.ok()) {
    std::cerr << bcr.status() << "\n";
    return 1;
  }

  Table t("Bus centralities (four classic notions vs the label-aware bc_r)",
          {"bus", "pagerank", "betweenness", "harm.closeness",
           "eigenvector", "bc_r(transport)"});
  NodeId first_bus = static_cast<NodeId>(opts.num_people);
  for (size_t b = 0; b < opts.num_buses; ++b) {
    NodeId bus = first_bus + static_cast<NodeId>(b);
    t.AddRow({*city.NodePropertyString(bus, "name"), FormatDouble(pr[bus], 5),
              FormatDouble(bc[bus], 1), FormatDouble(close[bus], 1),
              FormatDouble(eig[bus], 4), FormatDouble((*bcr)[bus], 1)});
  }
  t.Print(std::cout);
  return 0;
}
