// Contact tracing at scale: the Section 4.2 story on a synthetic city.
// Which bus matters most for infection propagation? Classical
// betweenness ranks by raw connectivity; the regex-constrained bc_r
// ranks buses by their role in *conforming* paths only.
//
// Run: ./build/examples/contact_tracing [num_people]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analytics/betweenness.h"
#include "datasets/contact_scenario.h"
#include "graph/graph_view.h"
#include "pathalg/enumerate.h"
#include "rpq/parser.h"
#include "rpq/path_nfa.h"

int main(int argc, char** argv) {
  using namespace kgq;

  ContactScenarioOptions opts;
  opts.num_people = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  opts.num_buses = 5;
  Rng rng(2021);
  PropertyGraph city = ContactScenario(opts, &rng);
  std::cout << "Synthetic city: " << city.num_nodes() << " nodes, "
            << city.num_edges() << " edges ("
            << opts.num_buses << " buses)\n\n";

  PropertyGraphView view(city);

  // Who possibly got infected on a shared bus?
  Result<RegexPtr> infected_query =
      ParseRegex("?person/rides/?bus/rides^-/?infected");
  Result<PathNfa> nfa = PathNfa::Compile(view, **infected_query);
  if (!nfa.ok()) {
    std::cerr << nfa.status() << "\n";
    return 1;
  }
  PathEnumerator enumerator(*nfa, 2);
  std::vector<char> flagged(city.num_nodes(), 0);
  Path p;
  size_t paths = 0;
  while (enumerator.Next(&p)) {
    flagged[p.Start()] = 1;
    ++paths;
  }
  size_t flagged_count = 0;
  for (char f : flagged) flagged_count += f;
  std::cout << "Possibly-infected query: " << flagged_count
            << " people flagged via " << paths << " exposure paths\n\n";

  // Rank buses: classical betweenness vs transport-restricted bc_r.
  std::vector<double> classic = BetweennessCentrality(
      city.labeled().topology(), EdgeDirection::kUndirected);
  Result<RegexPtr> transport =
      ParseRegex("?person/rides/?bus/rides^-/?person");
  BcrOptions bcr_opts;
  bcr_opts.max_path_length = 4;
  Result<std::vector<double>> bcr =
      RegexBetweenness(view, **transport, bcr_opts);
  if (!bcr.ok()) {
    std::cerr << bcr.status() << "\n";
    return 1;
  }

  std::printf("%-10s %14s %14s\n", "bus", "classic bc", "bc_r(transport)");
  NodeId first_bus = static_cast<NodeId>(opts.num_people);
  for (size_t b = 0; b < opts.num_buses; ++b) {
    NodeId bus = first_bus + static_cast<NodeId>(b);
    std::printf("%-10s %14.2f %14.2f\n",
                city.NodePropertyString(bus, "name")->c_str(), classic[bus],
                (*bcr)[bus]);
  }

  // The company nodes: classically central (they own several buses) but
  // irrelevant for transport.
  NodeId company = first_bus + static_cast<NodeId>(opts.num_buses);
  std::printf("%-10s %14.2f %14.2f   <- ownership, not transport\n",
              "company0", classic[company], (*bcr)[company]);
  return 0;
}
