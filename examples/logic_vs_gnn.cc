// Section 4.3 live: the same unary query answered three ways —
// declaratively (3-variable FO, naive joins), in the bounded-variable
// modal algebra, and procedurally by a compiled AC-GNN — plus the 1-WL
// ceiling that bounds what any of them can distinguish.
//
// Run: ./build/examples/logic_vs_gnn

#include <cstdio>
#include <iostream>

#include "datasets/figure2.h"
#include "gnn/logic_to_gnn.h"
#include "gnn/wl.h"
#include "graph/generators.h"
#include "logic/fo.h"
#include "logic/modal.h"
#include "util/timer.h"

int main() {
  using namespace kgq;

  LabeledGraph fig2 = Figure2Labeled();

  // ψ = person ∧ ◇rides(bus ∧ ◇⁻rides infected): the paper's example.
  ModalPtr psi = ModalFormula::And(
      ModalFormula::Label("person"),
      ModalFormula::Diamond(
          "rides", 1,
          ModalFormula::And(
              ModalFormula::Label("bus"),
              ModalFormula::DiamondInv("rides", 1,
                                       ModalFormula::Label("infected")))));
  std::cout << "Query (modal form): " << psi->ToString() << "\n\n";

  // 1. Bounded-variable (modal) evaluation.
  Bitset modal_answer = EvalModal(fig2, *psi);

  // 2. The 3-variable FO formula φ(x), evaluated with naive joins.
  using F = FoFormula;
  FoPtr phi = F::And(
      F::NodePred("person", 0),
      F::Exists(1, F::Exists(2, F::And(F::And(F::EdgePred("rides", 0, 1),
                                              F::NodePred("bus", 1)),
                                       F::And(F::EdgePred("rides", 2, 1),
                                              F::NodePred("infected", 2))))));
  FoEvalStats stats;
  Result<Bitset> fo_answer = EvalFoNaive(fig2, *phi, 0, &stats);

  // 3. Compiled AC-GNN.
  Result<CompiledGnn> gnn = CompileModalToGnn(*psi);
  Result<Bitset> gnn_answer = gnn->Evaluate(fig2);

  std::cout << "Answers on Figure 2 (1 = possibly infected):\n";
  std::printf("%-10s %6s %6s %6s\n", "node", "modal", "FO3", "GNN");
  const char* names[] = {"Juan", "Ana", "bus", "Pedro", "Rosa", "company"};
  for (NodeId v = 0; v < fig2.num_nodes(); ++v) {
    std::printf("%-10s %6d %6d %6d\n", names[v], (int)modal_answer.Test(v),
                (int)fo_answer->Test(v), (int)gnn_answer->Test(v));
  }
  std::printf(
      "\nφ uses %zu variables; its largest naive intermediate held %zu "
      "tuples of arity %zu.\nψ uses 2 variables; the modal engine never "
      "materializes more than a node set.\nThe compiled GNN has %zu "
      "layers × %zu features.\n",
      phi->NumDistinctVars(), stats.max_rows, stats.max_arity,
      gnn->gnn.num_layers(), gnn->subformulas.size());

  // WL ceiling: equivalent nodes can never be separated.
  Rng rng(7);
  LabeledGraph random_graph = ErdosRenyi(40, 120, {"p", "q"}, {"a"}, &rng);
  WlResult wl = WlColorRefinement(random_graph);
  std::printf(
      "\n1-WL on a random 40-node graph: %u stable colors after %zu "
      "rounds.\nNodes sharing a color are indistinguishable to every "
      "AC-GNN and every modal query.\n",
      wl.num_colors, wl.rounds);
  return 0;
}
