// Quickstart: the paper's Figure 2 scenario end to end — build the three
// data models, parse the paper's regular expressions, and run the query
// machinery (evaluation, counting, enumeration, uniform generation).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "datasets/figure2.h"
#include "graph/graph_view.h"
#include "pathalg/enumerate.h"
#include "pathalg/exact.h"
#include "pathalg/fpras.h"
#include "rdf/bgp.h"
#include "rdf/convert.h"
#include "rpq/parser.h"
#include "rpq/path_nfa.h"
#include "util/rng.h"

int main() {
  using namespace kgq;

  // ---- The three data models of Section 3 -------------------------------
  PropertyGraph property_graph = Figure2Property();
  LabeledGraph labeled_graph = Figure2Labeled();
  VectorSchema schema;
  VectorGraph vector_graph = Figure2Vector(&schema);

  std::cout << "Figure 2 in three models: " << property_graph.num_nodes()
            << " nodes, " << property_graph.num_edges() << " edges; vector"
            << " dimension d=" << vector_graph.dimension() << "\n\n";

  // ---- Regular path queries (Section 4) ----------------------------------
  // "People who possibly got infected because they shared a bus."
  Result<RegexPtr> query =
      ParseRegex("?person/rides/?bus/rides^-/?infected");
  if (!query.ok()) {
    std::cerr << "parse error: " << query.status() << "\n";
    return 1;
  }
  LabeledGraphView view(labeled_graph);
  Result<PathNfa> nfa = PathNfa::Compile(view, **query);
  if (!nfa.ok()) {
    std::cerr << "compile error: " << nfa.status() << "\n";
    return 1;
  }

  std::cout << "Query: " << (*query)->ToString() << "\n";
  PathEnumerator enumerator(*nfa, /*length=*/2);
  Path p;
  while (enumerator.Next(&p)) {
    std::cout << "  answer: ";
    for (size_t i = 0; i < p.nodes.size(); ++i) {
      if (i > 0) {
        std::cout << " -[" << labeled_graph.EdgeLabelString(p.edges[i - 1])
                  << "]- ";
      }
      std::cout
          << property_graph.NodePropertyString(p.nodes[i], "name")
                 .value_or(labeled_graph.NodeLabelString(p.nodes[i]));
    }
    std::cout << "\n";
  }

  // ---- Property-test query over the property graph ----------------------
  PropertyGraphView pview(property_graph);
  Result<RegexPtr> dated =
      ParseRegex("?person/[contact & date=\"3/4/21\"]/?person");
  Result<PathNfa> dated_nfa = PathNfa::Compile(pview, **dated);
  ExactPathIndex dated_index(*dated_nfa, 1);
  std::cout << "\nContacts dated 3/4/21: " << dated_index.Count(1)
            << " (equation (3) of the paper, relaxed to ?person)\n";

  // ---- Counting and uniform generation (Section 4.1) ---------------------
  Result<RegexPtr> walk = ParseRegex("(rides+rides^-+contact+lives)*");
  Result<PathNfa> walk_nfa = PathNfa::Compile(view, **walk);
  const size_t k = 4;
  ExactPathIndex index(*walk_nfa, k);
  FprasPathCounter fpras(*walk_nfa, k);
  std::printf("\nWalks of length %zu:  exact=%.0f  fpras≈%.1f\n", k,
              index.Count(k), fpras.Estimate());
  Rng rng(42);
  Result<Path> sample = index.Sample(k, &rng);
  if (sample.ok()) {
    std::cout << "One uniform sample: " << sample->ToString() << "\n";
  }

  // ---- The same data as RDF (Section 3) ----------------------------------
  TripleStore store = LabeledToRdf(labeled_graph);
  Result<std::vector<TriplePattern>> bgp = ParseBgp(
      "?x kgq:label person . ?x rides ?y . ?z rides ?y . "
      "?z kgq:label infected");
  Result<std::vector<Binding>> solutions = EvalBgp(store, *bgp);
  std::cout << "\nSPARQL-style BGP over the RDF encoding: "
            << solutions->size() << " solution(s)\n";
  for (const Binding& b : *solutions) {
    std::cout << "  ?x=" << store.dict().Lookup(b.at("x"))
              << " ?y=" << store.dict().Lookup(b.at("y"))
              << " ?z=" << store.dict().Lookup(b.at("z")) << "\n";
  }
  return 0;
}
