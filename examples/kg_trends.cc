// Figure 1 of the paper: yearly counts of publications whose titles
// mention each graph-data keyword, on the synthetic DBLP-scale corpus
// (see DESIGN.md for the substitution rationale).
//
// Run: ./build/examples/kg_trends [papers_per_year]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datasets/dblp_synth.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace kgq;

  DblpOptions opts;
  opts.papers_per_year =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100000;
  Rng rng(opts.seed);

  Timer timer;
  KeywordCounts result = RunFigure1Pipeline(opts, &rng);
  double secs = timer.Seconds();

  std::vector<std::string> headers = {"year"};
  for (const std::string& kw : Figure1Keywords()) headers.push_back(kw);
  headers.push_back("KG∩(RDF|SPARQL)");
  Table table("Figure 1 — publications per keyword per year", headers);
  for (size_t i = 0; i < result.years.size(); ++i) {
    std::vector<std::string> row = {std::to_string(result.years[i])};
    for (const std::string& kw : Figure1Keywords()) {
      row.push_back(std::to_string(result.counts.at(kw)[i]));
    }
    row.push_back(FormatDouble(result.kg_rdf_overlap[i] * 100.0, 1) + "%");
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("(%zu titles/year × %zu years scanned in %.2fs)\n",
              opts.papers_per_year, result.years.size(), secs);
  return 0;
}
