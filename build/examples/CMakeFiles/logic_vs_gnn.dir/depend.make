# Empty dependencies file for logic_vs_gnn.
# This may be replaced when dependencies are built.
