file(REMOVE_RECURSE
  "CMakeFiles/logic_vs_gnn.dir/logic_vs_gnn.cc.o"
  "CMakeFiles/logic_vs_gnn.dir/logic_vs_gnn.cc.o.d"
  "logic_vs_gnn"
  "logic_vs_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_vs_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
