# Empty dependencies file for knowledge_pipeline.
# This may be replaced when dependencies are built.
