file(REMOVE_RECURSE
  "CMakeFiles/knowledge_pipeline.dir/knowledge_pipeline.cc.o"
  "CMakeFiles/knowledge_pipeline.dir/knowledge_pipeline.cc.o.d"
  "knowledge_pipeline"
  "knowledge_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
