# Empty dependencies file for analytics_tour.
# This may be replaced when dependencies are built.
