file(REMOVE_RECURSE
  "CMakeFiles/analytics_tour.dir/analytics_tour.cc.o"
  "CMakeFiles/analytics_tour.dir/analytics_tour.cc.o.d"
  "analytics_tour"
  "analytics_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
