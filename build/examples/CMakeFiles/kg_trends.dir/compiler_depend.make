# Empty compiler generated dependencies file for kg_trends.
# This may be replaced when dependencies are built.
