file(REMOVE_RECURSE
  "CMakeFiles/kg_trends.dir/kg_trends.cc.o"
  "CMakeFiles/kg_trends.dir/kg_trends.cc.o.d"
  "kg_trends"
  "kg_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
