file(REMOVE_RECURSE
  "CMakeFiles/contact_tracing.dir/contact_tracing.cc.o"
  "CMakeFiles/contact_tracing.dir/contact_tracing.cc.o.d"
  "contact_tracing"
  "contact_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
