# Empty compiler generated dependencies file for contact_tracing.
# This may be replaced when dependencies are built.
