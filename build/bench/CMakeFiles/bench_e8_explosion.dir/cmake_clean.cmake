file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_explosion.dir/bench_e8_explosion.cc.o"
  "CMakeFiles/bench_e8_explosion.dir/bench_e8_explosion.cc.o.d"
  "bench_e8_explosion"
  "bench_e8_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
