# Empty compiler generated dependencies file for bench_e8_explosion.
# This may be replaced when dependencies are built.
