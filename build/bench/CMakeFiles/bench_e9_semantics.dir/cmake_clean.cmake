file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_semantics.dir/bench_e9_semantics.cc.o"
  "CMakeFiles/bench_e9_semantics.dir/bench_e9_semantics.cc.o.d"
  "bench_e9_semantics"
  "bench_e9_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
