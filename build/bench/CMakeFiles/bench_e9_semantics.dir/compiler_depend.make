# Empty compiler generated dependencies file for bench_e9_semantics.
# This may be replaced when dependencies are built.
