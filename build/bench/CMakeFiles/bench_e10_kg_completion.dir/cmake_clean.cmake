file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_kg_completion.dir/bench_e10_kg_completion.cc.o"
  "CMakeFiles/bench_e10_kg_completion.dir/bench_e10_kg_completion.cc.o.d"
  "bench_e10_kg_completion"
  "bench_e10_kg_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_kg_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
