# Empty dependencies file for bench_e10_kg_completion.
# This may be replaced when dependencies are built.
