file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_analytics.dir/bench_e4_analytics.cc.o"
  "CMakeFiles/bench_e4_analytics.dir/bench_e4_analytics.cc.o.d"
  "bench_e4_analytics"
  "bench_e4_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
