# Empty dependencies file for bench_e4_analytics.
# This may be replaced when dependencies are built.
