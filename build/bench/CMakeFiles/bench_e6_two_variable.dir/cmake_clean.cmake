file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_two_variable.dir/bench_e6_two_variable.cc.o"
  "CMakeFiles/bench_e6_two_variable.dir/bench_e6_two_variable.cc.o.d"
  "bench_e6_two_variable"
  "bench_e6_two_variable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_two_variable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
