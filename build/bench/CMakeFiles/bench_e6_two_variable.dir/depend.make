# Empty dependencies file for bench_e6_two_variable.
# This may be replaced when dependencies are built.
