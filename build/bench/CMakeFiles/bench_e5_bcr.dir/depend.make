# Empty dependencies file for bench_e5_bcr.
# This may be replaced when dependencies are built.
