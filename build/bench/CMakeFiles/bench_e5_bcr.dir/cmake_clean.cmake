file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_bcr.dir/bench_e5_bcr.cc.o"
  "CMakeFiles/bench_e5_bcr.dir/bench_e5_bcr.cc.o.d"
  "bench_e5_bcr"
  "bench_e5_bcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_bcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
