# Empty compiler generated dependencies file for bench_e7_logic_gnn.
# This may be replaced when dependencies are built.
