file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_logic_gnn.dir/bench_e7_logic_gnn.cc.o"
  "CMakeFiles/bench_e7_logic_gnn.dir/bench_e7_logic_gnn.cc.o.d"
  "bench_e7_logic_gnn"
  "bench_e7_logic_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_logic_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
