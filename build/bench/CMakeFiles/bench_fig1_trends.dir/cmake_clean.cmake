file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_trends.dir/bench_fig1_trends.cc.o"
  "CMakeFiles/bench_fig1_trends.dir/bench_fig1_trends.cc.o.d"
  "bench_fig1_trends"
  "bench_fig1_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
