# Empty dependencies file for bench_fig1_trends.
# This may be replaced when dependencies are built.
