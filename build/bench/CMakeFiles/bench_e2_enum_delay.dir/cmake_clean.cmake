file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_enum_delay.dir/bench_e2_enum_delay.cc.o"
  "CMakeFiles/bench_e2_enum_delay.dir/bench_e2_enum_delay.cc.o.d"
  "bench_e2_enum_delay"
  "bench_e2_enum_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_enum_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
