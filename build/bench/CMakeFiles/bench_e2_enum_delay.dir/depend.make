# Empty dependencies file for bench_e2_enum_delay.
# This may be replaced when dependencies are built.
