file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_models.dir/bench_fig2_models.cc.o"
  "CMakeFiles/bench_fig2_models.dir/bench_fig2_models.cc.o.d"
  "bench_fig2_models"
  "bench_fig2_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
