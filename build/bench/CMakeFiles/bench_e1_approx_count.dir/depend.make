# Empty dependencies file for bench_e1_approx_count.
# This may be replaced when dependencies are built.
