file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_approx_count.dir/bench_e1_approx_count.cc.o"
  "CMakeFiles/bench_e1_approx_count.dir/bench_e1_approx_count.cc.o.d"
  "bench_e1_approx_count"
  "bench_e1_approx_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_approx_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
