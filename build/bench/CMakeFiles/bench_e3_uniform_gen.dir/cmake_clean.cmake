file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_uniform_gen.dir/bench_e3_uniform_gen.cc.o"
  "CMakeFiles/bench_e3_uniform_gen.dir/bench_e3_uniform_gen.cc.o.d"
  "bench_e3_uniform_gen"
  "bench_e3_uniform_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_uniform_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
