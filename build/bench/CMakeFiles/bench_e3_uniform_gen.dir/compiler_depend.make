# Empty compiler generated dependencies file for bench_e3_uniform_gen.
# This may be replaced when dependencies are built.
