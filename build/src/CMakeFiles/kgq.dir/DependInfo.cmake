
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/betweenness.cc" "src/CMakeFiles/kgq.dir/analytics/betweenness.cc.o" "gcc" "src/CMakeFiles/kgq.dir/analytics/betweenness.cc.o.d"
  "/root/repo/src/analytics/centrality_extra.cc" "src/CMakeFiles/kgq.dir/analytics/centrality_extra.cc.o" "gcc" "src/CMakeFiles/kgq.dir/analytics/centrality_extra.cc.o.d"
  "/root/repo/src/analytics/clustering.cc" "src/CMakeFiles/kgq.dir/analytics/clustering.cc.o" "gcc" "src/CMakeFiles/kgq.dir/analytics/clustering.cc.o.d"
  "/root/repo/src/analytics/components.cc" "src/CMakeFiles/kgq.dir/analytics/components.cc.o" "gcc" "src/CMakeFiles/kgq.dir/analytics/components.cc.o.d"
  "/root/repo/src/analytics/densest.cc" "src/CMakeFiles/kgq.dir/analytics/densest.cc.o" "gcc" "src/CMakeFiles/kgq.dir/analytics/densest.cc.o.d"
  "/root/repo/src/analytics/pagerank.cc" "src/CMakeFiles/kgq.dir/analytics/pagerank.cc.o" "gcc" "src/CMakeFiles/kgq.dir/analytics/pagerank.cc.o.d"
  "/root/repo/src/analytics/shortest_paths.cc" "src/CMakeFiles/kgq.dir/analytics/shortest_paths.cc.o" "gcc" "src/CMakeFiles/kgq.dir/analytics/shortest_paths.cc.o.d"
  "/root/repo/src/automata/dfa.cc" "src/CMakeFiles/kgq.dir/automata/dfa.cc.o" "gcc" "src/CMakeFiles/kgq.dir/automata/dfa.cc.o.d"
  "/root/repo/src/automata/nfa.cc" "src/CMakeFiles/kgq.dir/automata/nfa.cc.o" "gcc" "src/CMakeFiles/kgq.dir/automata/nfa.cc.o.d"
  "/root/repo/src/datasets/contact_scenario.cc" "src/CMakeFiles/kgq.dir/datasets/contact_scenario.cc.o" "gcc" "src/CMakeFiles/kgq.dir/datasets/contact_scenario.cc.o.d"
  "/root/repo/src/datasets/dblp_synth.cc" "src/CMakeFiles/kgq.dir/datasets/dblp_synth.cc.o" "gcc" "src/CMakeFiles/kgq.dir/datasets/dblp_synth.cc.o.d"
  "/root/repo/src/datasets/figure2.cc" "src/CMakeFiles/kgq.dir/datasets/figure2.cc.o" "gcc" "src/CMakeFiles/kgq.dir/datasets/figure2.cc.o.d"
  "/root/repo/src/embed/transe.cc" "src/CMakeFiles/kgq.dir/embed/transe.cc.o" "gcc" "src/CMakeFiles/kgq.dir/embed/transe.cc.o.d"
  "/root/repo/src/gnn/acgnn.cc" "src/CMakeFiles/kgq.dir/gnn/acgnn.cc.o" "gcc" "src/CMakeFiles/kgq.dir/gnn/acgnn.cc.o.d"
  "/root/repo/src/gnn/logic_to_gnn.cc" "src/CMakeFiles/kgq.dir/gnn/logic_to_gnn.cc.o" "gcc" "src/CMakeFiles/kgq.dir/gnn/logic_to_gnn.cc.o.d"
  "/root/repo/src/gnn/matrix.cc" "src/CMakeFiles/kgq.dir/gnn/matrix.cc.o" "gcc" "src/CMakeFiles/kgq.dir/gnn/matrix.cc.o.d"
  "/root/repo/src/gnn/train.cc" "src/CMakeFiles/kgq.dir/gnn/train.cc.o" "gcc" "src/CMakeFiles/kgq.dir/gnn/train.cc.o.d"
  "/root/repo/src/gnn/wl.cc" "src/CMakeFiles/kgq.dir/gnn/wl.cc.o" "gcc" "src/CMakeFiles/kgq.dir/gnn/wl.cc.o.d"
  "/root/repo/src/graph/conversions.cc" "src/CMakeFiles/kgq.dir/graph/conversions.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/conversions.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/kgq.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph_view.cc" "src/CMakeFiles/kgq.dir/graph/graph_view.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/graph_view.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/kgq.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/labeled_graph.cc" "src/CMakeFiles/kgq.dir/graph/labeled_graph.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/labeled_graph.cc.o.d"
  "/root/repo/src/graph/multigraph.cc" "src/CMakeFiles/kgq.dir/graph/multigraph.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/multigraph.cc.o.d"
  "/root/repo/src/graph/property_graph.cc" "src/CMakeFiles/kgq.dir/graph/property_graph.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/property_graph.cc.o.d"
  "/root/repo/src/graph/transform.cc" "src/CMakeFiles/kgq.dir/graph/transform.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/transform.cc.o.d"
  "/root/repo/src/graph/vector_graph.cc" "src/CMakeFiles/kgq.dir/graph/vector_graph.cc.o" "gcc" "src/CMakeFiles/kgq.dir/graph/vector_graph.cc.o.d"
  "/root/repo/src/logic/fo.cc" "src/CMakeFiles/kgq.dir/logic/fo.cc.o" "gcc" "src/CMakeFiles/kgq.dir/logic/fo.cc.o.d"
  "/root/repo/src/logic/modal.cc" "src/CMakeFiles/kgq.dir/logic/modal.cc.o" "gcc" "src/CMakeFiles/kgq.dir/logic/modal.cc.o.d"
  "/root/repo/src/logic/rpq_to_modal.cc" "src/CMakeFiles/kgq.dir/logic/rpq_to_modal.cc.o" "gcc" "src/CMakeFiles/kgq.dir/logic/rpq_to_modal.cc.o.d"
  "/root/repo/src/pathalg/enumerate.cc" "src/CMakeFiles/kgq.dir/pathalg/enumerate.cc.o" "gcc" "src/CMakeFiles/kgq.dir/pathalg/enumerate.cc.o.d"
  "/root/repo/src/pathalg/exact.cc" "src/CMakeFiles/kgq.dir/pathalg/exact.cc.o" "gcc" "src/CMakeFiles/kgq.dir/pathalg/exact.cc.o.d"
  "/root/repo/src/pathalg/fpras.cc" "src/CMakeFiles/kgq.dir/pathalg/fpras.cc.o" "gcc" "src/CMakeFiles/kgq.dir/pathalg/fpras.cc.o.d"
  "/root/repo/src/pathalg/pairs.cc" "src/CMakeFiles/kgq.dir/pathalg/pairs.cc.o" "gcc" "src/CMakeFiles/kgq.dir/pathalg/pairs.cc.o.d"
  "/root/repo/src/pathalg/reach.cc" "src/CMakeFiles/kgq.dir/pathalg/reach.cc.o" "gcc" "src/CMakeFiles/kgq.dir/pathalg/reach.cc.o.d"
  "/root/repo/src/pathalg/simple_paths.cc" "src/CMakeFiles/kgq.dir/pathalg/simple_paths.cc.o" "gcc" "src/CMakeFiles/kgq.dir/pathalg/simple_paths.cc.o.d"
  "/root/repo/src/query/match_query.cc" "src/CMakeFiles/kgq.dir/query/match_query.cc.o" "gcc" "src/CMakeFiles/kgq.dir/query/match_query.cc.o.d"
  "/root/repo/src/rdf/bgp.cc" "src/CMakeFiles/kgq.dir/rdf/bgp.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rdf/bgp.cc.o.d"
  "/root/repo/src/rdf/convert.cc" "src/CMakeFiles/kgq.dir/rdf/convert.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rdf/convert.cc.o.d"
  "/root/repo/src/rdf/rdf_view.cc" "src/CMakeFiles/kgq.dir/rdf/rdf_view.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rdf/rdf_view.cc.o.d"
  "/root/repo/src/rdf/rdfs.cc" "src/CMakeFiles/kgq.dir/rdf/rdfs.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rdf/rdfs.cc.o.d"
  "/root/repo/src/rdf/reify.cc" "src/CMakeFiles/kgq.dir/rdf/reify.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rdf/reify.cc.o.d"
  "/root/repo/src/rdf/triple_store.cc" "src/CMakeFiles/kgq.dir/rdf/triple_store.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rdf/triple_store.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "src/CMakeFiles/kgq.dir/rdf/turtle.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rdf/turtle.cc.o.d"
  "/root/repo/src/rpq/parser.cc" "src/CMakeFiles/kgq.dir/rpq/parser.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rpq/parser.cc.o.d"
  "/root/repo/src/rpq/path.cc" "src/CMakeFiles/kgq.dir/rpq/path.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rpq/path.cc.o.d"
  "/root/repo/src/rpq/path_nfa.cc" "src/CMakeFiles/kgq.dir/rpq/path_nfa.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rpq/path_nfa.cc.o.d"
  "/root/repo/src/rpq/query_automaton.cc" "src/CMakeFiles/kgq.dir/rpq/query_automaton.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rpq/query_automaton.cc.o.d"
  "/root/repo/src/rpq/reference_eval.cc" "src/CMakeFiles/kgq.dir/rpq/reference_eval.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rpq/reference_eval.cc.o.d"
  "/root/repo/src/rpq/regex.cc" "src/CMakeFiles/kgq.dir/rpq/regex.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rpq/regex.cc.o.d"
  "/root/repo/src/rpq/test_eval.cc" "src/CMakeFiles/kgq.dir/rpq/test_eval.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rpq/test_eval.cc.o.d"
  "/root/repo/src/rpq/test_expr.cc" "src/CMakeFiles/kgq.dir/rpq/test_expr.cc.o" "gcc" "src/CMakeFiles/kgq.dir/rpq/test_expr.cc.o.d"
  "/root/repo/src/util/bitset.cc" "src/CMakeFiles/kgq.dir/util/bitset.cc.o" "gcc" "src/CMakeFiles/kgq.dir/util/bitset.cc.o.d"
  "/root/repo/src/util/interner.cc" "src/CMakeFiles/kgq.dir/util/interner.cc.o" "gcc" "src/CMakeFiles/kgq.dir/util/interner.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/kgq.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/kgq.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/kgq.dir/util/status.cc.o" "gcc" "src/CMakeFiles/kgq.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/kgq.dir/util/table.cc.o" "gcc" "src/CMakeFiles/kgq.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
