file(REMOVE_RECURSE
  "libkgq.a"
)
