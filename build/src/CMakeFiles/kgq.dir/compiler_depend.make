# Empty compiler generated dependencies file for kgq.
# This may be replaced when dependencies are built.
