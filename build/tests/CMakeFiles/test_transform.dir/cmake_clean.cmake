file(REMOVE_RECURSE
  "CMakeFiles/test_transform.dir/test_transform.cc.o"
  "CMakeFiles/test_transform.dir/test_transform.cc.o.d"
  "test_transform"
  "test_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
