file(REMOVE_RECURSE
  "CMakeFiles/test_gnn_train.dir/test_gnn_train.cc.o"
  "CMakeFiles/test_gnn_train.dir/test_gnn_train.cc.o.d"
  "test_gnn_train"
  "test_gnn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
