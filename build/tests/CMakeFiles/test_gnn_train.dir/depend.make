# Empty dependencies file for test_gnn_train.
# This may be replaced when dependencies are built.
