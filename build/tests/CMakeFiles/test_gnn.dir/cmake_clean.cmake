file(REMOVE_RECURSE
  "CMakeFiles/test_gnn.dir/test_gnn.cc.o"
  "CMakeFiles/test_gnn.dir/test_gnn.cc.o.d"
  "test_gnn"
  "test_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
