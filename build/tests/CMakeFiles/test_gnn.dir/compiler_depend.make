# Empty compiler generated dependencies file for test_gnn.
# This may be replaced when dependencies are built.
