# Empty dependencies file for test_graph_models.
# This may be replaced when dependencies are built.
