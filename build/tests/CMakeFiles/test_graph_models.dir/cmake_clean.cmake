file(REMOVE_RECURSE
  "CMakeFiles/test_graph_models.dir/test_graph_models.cc.o"
  "CMakeFiles/test_graph_models.dir/test_graph_models.cc.o.d"
  "test_graph_models"
  "test_graph_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
