file(REMOVE_RECURSE
  "CMakeFiles/test_parser.dir/test_parser.cc.o"
  "CMakeFiles/test_parser.dir/test_parser.cc.o.d"
  "test_parser"
  "test_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
