# Empty compiler generated dependencies file for test_property_sweeps.
# This may be replaced when dependencies are built.
