file(REMOVE_RECURSE
  "CMakeFiles/test_analytics_extra.dir/test_analytics_extra.cc.o"
  "CMakeFiles/test_analytics_extra.dir/test_analytics_extra.cc.o.d"
  "test_analytics_extra"
  "test_analytics_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytics_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
