# Empty compiler generated dependencies file for test_analytics_extra.
# This may be replaced when dependencies are built.
