file(REMOVE_RECURSE
  "CMakeFiles/test_graph_io.dir/test_graph_io.cc.o"
  "CMakeFiles/test_graph_io.dir/test_graph_io.cc.o.d"
  "test_graph_io"
  "test_graph_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
