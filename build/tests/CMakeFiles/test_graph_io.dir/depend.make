# Empty dependencies file for test_graph_io.
# This may be replaced when dependencies are built.
