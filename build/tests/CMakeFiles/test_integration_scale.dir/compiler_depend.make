# Empty compiler generated dependencies file for test_integration_scale.
# This may be replaced when dependencies are built.
