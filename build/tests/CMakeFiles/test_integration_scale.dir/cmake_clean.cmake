file(REMOVE_RECURSE
  "CMakeFiles/test_integration_scale.dir/test_integration_scale.cc.o"
  "CMakeFiles/test_integration_scale.dir/test_integration_scale.cc.o.d"
  "test_integration_scale"
  "test_integration_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
