file(REMOVE_RECURSE
  "CMakeFiles/test_betweenness.dir/test_betweenness.cc.o"
  "CMakeFiles/test_betweenness.dir/test_betweenness.cc.o.d"
  "test_betweenness"
  "test_betweenness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_betweenness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
