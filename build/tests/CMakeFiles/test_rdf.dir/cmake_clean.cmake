file(REMOVE_RECURSE
  "CMakeFiles/test_rdf.dir/test_rdf.cc.o"
  "CMakeFiles/test_rdf.dir/test_rdf.cc.o.d"
  "test_rdf"
  "test_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
