# Empty dependencies file for test_rdf.
# This may be replaced when dependencies are built.
