file(REMOVE_RECURSE
  "CMakeFiles/test_analytics.dir/test_analytics.cc.o"
  "CMakeFiles/test_analytics.dir/test_analytics.cc.o.d"
  "test_analytics"
  "test_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
