file(REMOVE_RECURSE
  "CMakeFiles/test_transe.dir/test_transe.cc.o"
  "CMakeFiles/test_transe.dir/test_transe.cc.o.d"
  "test_transe"
  "test_transe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
