# Empty compiler generated dependencies file for test_transe.
# This may be replaced when dependencies are built.
