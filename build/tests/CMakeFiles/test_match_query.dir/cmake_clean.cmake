file(REMOVE_RECURSE
  "CMakeFiles/test_match_query.dir/test_match_query.cc.o"
  "CMakeFiles/test_match_query.dir/test_match_query.cc.o.d"
  "test_match_query"
  "test_match_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
