# Empty compiler generated dependencies file for test_rdfs_reasoning.
# This may be replaced when dependencies are built.
