file(REMOVE_RECURSE
  "CMakeFiles/test_rdfs_reasoning.dir/test_rdfs_reasoning.cc.o"
  "CMakeFiles/test_rdfs_reasoning.dir/test_rdfs_reasoning.cc.o.d"
  "test_rdfs_reasoning"
  "test_rdfs_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdfs_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
