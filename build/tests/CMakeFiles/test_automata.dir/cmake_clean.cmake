file(REMOVE_RECURSE
  "CMakeFiles/test_automata.dir/test_automata.cc.o"
  "CMakeFiles/test_automata.dir/test_automata.cc.o.d"
  "test_automata"
  "test_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
