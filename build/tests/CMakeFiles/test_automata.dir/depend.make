# Empty dependencies file for test_automata.
# This may be replaced when dependencies are built.
