# Empty dependencies file for test_pathalg.
# This may be replaced when dependencies are built.
