file(REMOVE_RECURSE
  "CMakeFiles/test_pathalg.dir/test_pathalg.cc.o"
  "CMakeFiles/test_pathalg.dir/test_pathalg.cc.o.d"
  "test_pathalg"
  "test_pathalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pathalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
