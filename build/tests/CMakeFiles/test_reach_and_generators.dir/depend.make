# Empty dependencies file for test_reach_and_generators.
# This may be replaced when dependencies are built.
