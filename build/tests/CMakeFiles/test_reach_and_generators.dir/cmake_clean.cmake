file(REMOVE_RECURSE
  "CMakeFiles/test_reach_and_generators.dir/test_reach_and_generators.cc.o"
  "CMakeFiles/test_reach_and_generators.dir/test_reach_and_generators.cc.o.d"
  "test_reach_and_generators"
  "test_reach_and_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reach_and_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
