file(REMOVE_RECURSE
  "CMakeFiles/test_datasets.dir/test_datasets.cc.o"
  "CMakeFiles/test_datasets.dir/test_datasets.cc.o.d"
  "test_datasets"
  "test_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
