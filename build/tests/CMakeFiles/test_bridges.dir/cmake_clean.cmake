file(REMOVE_RECURSE
  "CMakeFiles/test_bridges.dir/test_bridges.cc.o"
  "CMakeFiles/test_bridges.dir/test_bridges.cc.o.d"
  "test_bridges"
  "test_bridges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bridges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
