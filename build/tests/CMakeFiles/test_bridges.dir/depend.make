# Empty dependencies file for test_bridges.
# This may be replaced when dependencies are built.
