file(REMOVE_RECURSE
  "CMakeFiles/test_cross_model.dir/test_cross_model.cc.o"
  "CMakeFiles/test_cross_model.dir/test_cross_model.cc.o.d"
  "test_cross_model"
  "test_cross_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
