# Empty dependencies file for test_regex_fuzz.
# This may be replaced when dependencies are built.
