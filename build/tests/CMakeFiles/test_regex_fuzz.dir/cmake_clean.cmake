file(REMOVE_RECURSE
  "CMakeFiles/test_regex_fuzz.dir/test_regex_fuzz.cc.o"
  "CMakeFiles/test_regex_fuzz.dir/test_regex_fuzz.cc.o.d"
  "test_regex_fuzz"
  "test_regex_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regex_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
