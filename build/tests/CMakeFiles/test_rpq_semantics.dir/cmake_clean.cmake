file(REMOVE_RECURSE
  "CMakeFiles/test_rpq_semantics.dir/test_rpq_semantics.cc.o"
  "CMakeFiles/test_rpq_semantics.dir/test_rpq_semantics.cc.o.d"
  "test_rpq_semantics"
  "test_rpq_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpq_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
