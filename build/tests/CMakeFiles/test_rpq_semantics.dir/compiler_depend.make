# Empty compiler generated dependencies file for test_rpq_semantics.
# This may be replaced when dependencies are built.
