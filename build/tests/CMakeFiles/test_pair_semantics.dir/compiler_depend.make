# Empty compiler generated dependencies file for test_pair_semantics.
# This may be replaced when dependencies are built.
