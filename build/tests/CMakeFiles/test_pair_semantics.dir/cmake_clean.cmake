file(REMOVE_RECURSE
  "CMakeFiles/test_pair_semantics.dir/test_pair_semantics.cc.o"
  "CMakeFiles/test_pair_semantics.dir/test_pair_semantics.cc.o.d"
  "test_pair_semantics"
  "test_pair_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pair_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
